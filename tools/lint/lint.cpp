#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace jigsaw::lint {

namespace {

using Kind = Token::Kind;

bool ident_is(const Token& t, const char* text) {
  return t.kind == Kind::kIdent && t.text == text;
}
bool punct_is(const Token& t, const char* text) {
  return t.kind == Kind::kPunct && t.text == text;
}

// ---- Lexer ---------------------------------------------------------------

/// Two-character punctuators fused into one token. `>>` is fused too;
/// template-skipping code counts it as two closers.
const char* const kFusedPunct[] = {
    "::", "->", "<<", ">>", "[[", "]]", "==", "!=", "<=", ">=", "&&",
    "||", "+=", "-=", "*=", "/=", "%=", "^=", "|=", "&=", "++", "--",
};

/// True when a comment's text, leading whitespace and `/`s stripped,
/// starts with `prefix` — the form of a standalone tag comment like
/// `// jigsaw-lint: hot-path`. Mentions of the tag mid-prose or inside
/// string literals never match.
bool comment_starts_with(const std::string& comment,
                         const std::string& prefix) {
  std::size_t k = 0;
  while (k < comment.size() &&
         (comment[k] == '/' ||
          std::isspace(static_cast<unsigned char>(comment[k])))) {
    ++k;
  }
  return comment.compare(k, prefix.size(), prefix) == 0;
}

/// Extracts the `allow(rule[,rule]): reason` directive from a comment's
/// text, if any. Both the `jigsaw-lint:` and `jigsaw-analyze:` tags are
/// accepted (the semantic analyzer shares the suppression mechanism),
/// and the tag must open the comment — prose *describing* the syntax is
/// not a directive. Returns whether a directive was found; `out.rules`
/// may be empty for a malformed `allow()` (bad-suppression reports
/// those).
bool parse_allow_directive(const std::string& comment, AllowDirective& out) {
  if (!comment_starts_with(comment, "jigsaw-lint:") &&
      !comment_starts_with(comment, "jigsaw-analyze:")) {
    return false;
  }
  std::size_t at = comment.find("allow(");
  if (at == std::string::npos) return false;
  const std::size_t open = at + 5;
  const std::size_t close = comment.find(')', open);
  if (close == std::string::npos) return false;
  std::string inside = comment.substr(open + 1, close - open - 1);
  std::string current;
  for (char c : inside + ",") {
    if (c == ',') {
      if (!current.empty()) out.rules.push_back(current);
      current.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      current += c;
    }
  }
  // The reason is the prose after `):` — require a colon and at least one
  // non-space character behind it on the directive's own line.
  std::size_t after = close + 1;
  while (after < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[after])) &&
         comment[after] != '\n') {
    ++after;
  }
  if (after < comment.size() && comment[after] == ':') {
    for (std::size_t k = after + 1; k < comment.size(); ++k) {
      if (!std::isspace(static_cast<unsigned char>(comment[k]))) {
        out.has_reason = true;
        break;
      }
    }
  }
  return true;
}

struct Lexer {
  const std::string& src;
  SourceFile& out;
  std::size_t i = 0;
  int line = 1;
  /// allow() rules from a comment block not yet anchored to a code line.
  std::vector<std::string> pending_rules;

  explicit Lexer(const std::string& s, SourceFile& f) : src(s), out(f) {}

  bool eof() const { return i >= src.size(); }
  char peek(std::size_t ahead = 0) const {
    return i + ahead < src.size() ? src[i + ahead] : '\0';
  }
  void advance() {
    if (src[i] == '\n') ++line;
    ++i;
  }

  void push(Kind kind, std::string text, int at_line) {
    out.tokens.push_back(Token{kind, std::move(text), at_line});
    for (std::string& rule : pending_rules) {
      out.suppressions.push_back(Suppression{at_line, std::move(rule)});
    }
    pending_rules.clear();
  }

  void handle_comment(const std::string& text, int start_line) {
    if (comment_starts_with(text, "jigsaw-lint: hot-path")) {
      out.hot_path_tagged = true;
    }
    AllowDirective directive;
    if (!parse_allow_directive(text, directive)) return;
    directive.line = start_line;
    const bool trailing =
        !out.tokens.empty() && out.tokens.back().line == start_line;
    for (const std::string& rule : directive.rules) {
      if (trailing) {
        out.suppressions.push_back(Suppression{start_line, rule});
      } else {
        pending_rules.push_back(rule);
      }
    }
    out.allows.push_back(std::move(directive));
  }

  /// Consumes a whole preprocessor directive (with `\` continuations),
  /// recording #include targets and #pragma once.
  void handle_preprocessor() {
    std::string text;
    while (!eof()) {
      const char c = peek();
      if (c == '\\' && peek(1) == '\n') {
        advance();
        advance();
        continue;
      }
      if (c == '\n') break;
      text += c;
      advance();
    }
    std::istringstream is(text);
    std::string hash, word;
    is >> hash >> word;
    if (hash == "#") {
      // `#  include` splits; renormalize.
      hash += word;
      is >> word;
      std::swap(hash, word);
      word = hash;
    }
    if (text.find("pragma") != std::string::npos &&
        text.find("once") != std::string::npos) {
      out.has_pragma_once = true;
    }
    const std::size_t inc = text.find("include");
    if (inc != std::string::npos) {
      std::size_t open = text.find_first_of("<\"", inc);
      if (open != std::string::npos) {
        const char closer = text[open] == '<' ? '>' : '"';
        const std::size_t close = text.find(closer, open + 1);
        if (close != std::string::npos) {
          out.includes.push_back(text.substr(open + 1, close - open - 1));
        }
      }
    }
  }

  void lex_string() {
    const int at = line;
    advance();  // opening quote
    std::string text;
    while (!eof() && peek() != '"') {
      if (peek() == '\\' && i + 1 < src.size()) {
        text += peek();
        advance();
      }
      text += peek();
      advance();
    }
    if (!eof()) advance();  // closing quote
    push(Kind::kString, std::move(text), at);
  }

  void lex_raw_string() {
    const int at = line;
    advance();  // the opening quote (R already consumed by caller)
    std::string delim;
    while (!eof() && peek() != '(') {
      delim += peek();
      advance();
    }
    const std::string closer = ")" + delim + "\"";
    std::string text;
    while (!eof() && src.compare(i, closer.size(), closer) != 0) {
      text += peek();
      advance();
    }
    for (std::size_t k = 0; k < closer.size() && !eof(); ++k) advance();
    push(Kind::kString, std::move(text), at);
  }

  void run() {
    bool line_has_code = false;
    while (!eof()) {
      const char c = peek();
      if (c == '\n') {
        line_has_code = false;
        advance();
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
        continue;
      }
      if (c == '#' && !line_has_code) {
        handle_preprocessor();
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        const int at = line;
        std::string text;
        while (!eof() && peek() != '\n') {
          text += peek();
          advance();
        }
        handle_comment(text, at);
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        const int at = line;
        std::string text;
        advance();
        advance();
        while (!eof() && !(peek() == '*' && peek(1) == '/')) {
          text += peek();
          advance();
        }
        advance();
        advance();
        handle_comment(text, at);
        continue;
      }
      line_has_code = true;
      if (c == '"') {
        lex_string();
        continue;
      }
      // Raw / prefixed string literals: R"...", u8R"...", LR"..." etc.
      if ((c == 'R' || c == 'L' || c == 'u' || c == 'U') &&
          looks_like_string_prefix()) {
        continue;  // looks_like_string_prefix consumed it
      }
      if (c == '\'') {
        const int at = line;
        advance();
        std::string text;
        while (!eof() && peek() != '\'') {
          if (peek() == '\\') {
            text += peek();
            advance();
          }
          if (!eof()) {
            text += peek();
            advance();
          }
        }
        if (!eof()) advance();
        push(Kind::kChar, std::move(text), at);
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        const int at = line;
        std::string text;
        while (!eof()) {
          const char d = peek();
          if (std::isalnum(static_cast<unsigned char>(d)) || d == '.' ||
              d == '\'' ||
              ((d == '+' || d == '-') && !text.empty() &&
               (text.back() == 'e' || text.back() == 'E' ||
                text.back() == 'p' || text.back() == 'P'))) {
            text += d;
            advance();
          } else {
            break;
          }
        }
        // Digit separators are irrelevant to the rules; normalize away.
        text.erase(std::remove(text.begin(), text.end(), '\''), text.end());
        push(Kind::kNumber, std::move(text), at);
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        const int at = line;
        std::string text;
        while (!eof() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                          peek() == '_')) {
          text += peek();
          advance();
        }
        push(Kind::kIdent, std::move(text), at);
        continue;
      }
      // Punctuator: try the fused two-char set first.
      const int at = line;
      for (const char* fused : kFusedPunct) {
        if (c == fused[0] && peek(1) == fused[1]) {
          advance();
          advance();
          push(Kind::kPunct, fused, at);
          goto next;
        }
      }
      advance();
      push(Kind::kPunct, std::string(1, c), at);
    next:;
    }
  }

  /// When positioned at a possible string-literal prefix (R, u8R, LR,
  /// uR, UR), consumes the raw string and returns true. For plain
  /// identifiers returns false without consuming.
  bool looks_like_string_prefix() {
    std::size_t k = i;
    while (k < src.size() &&
           (std::isalnum(static_cast<unsigned char>(src[k])) ||
            src[k] == '_')) {
      ++k;
    }
    // Identifier followed by a quote with an R immediately before it.
    if (k < src.size() && src[k] == '"' && k > i && src[k - 1] == 'R' &&
        k - i <= 3) {
      while (i < k - 1) advance();  // consume prefix up to the R
      advance();                    // the R
      lex_raw_string();
      return true;
    }
    return false;
  }
};

void report(std::vector<Finding>& findings, const SourceFile& f, int line,
            std::string rule, std::string message) {
  if (is_suppressed(f, line, rule)) return;
  findings.push_back(Finding{f.path, line, std::move(rule),
                             std::move(message)});
}

bool path_ends_with(const std::string& path, const std::string& tail) {
  return path.size() >= tail.size() &&
         path.compare(path.size() - tail.size(), tail.size(), tail) == 0;
}

bool path_contains(const std::string& path, const std::string& piece) {
  return path.find(piece) != std::string::npos;
}

// ---- Declaration scanning (shared by nodiscard-status and the
// ---- discarded-status name collection) -----------------------------------

/// Declaration-starter tokens: a Status/Result type token directly after
/// one of these (at paren depth 0) begins a declaration's type.
bool is_decl_starter(const Token& t) {
  static const std::set<std::string> kStarters = {
      ";",      "{",     "}",         ":",        "]]",    ">",
      "inline", "static", "constexpr", "virtual", "explicit",
      "typename", "const",
  };
  return kStarters.count(t.text) > 0;
}

/// Skips a balanced `<...>` starting at tokens[j] (which must be `<`).
/// Returns the index one past the closing `>`. `>>` counts double.
std::size_t skip_template_args(const std::vector<Token>& toks,
                               std::size_t j) {
  int depth = 0;
  for (; j < toks.size(); ++j) {
    const std::string& t = toks[j].text;
    if (t == "<") ++depth;
    if (t == "<=" || t == "<<") continue;  // not template brackets
    if (t == ">") --depth;
    if (t == ">>") depth -= 2;
    if (depth <= 0 && (t == ">" || t == ">>")) return j + 1;
  }
  return j;
}

struct DeclInfo {
  std::size_t type_index = 0;  ///< index of the Status/Result token
  std::size_t name_index = 0;  ///< index of the function-name token
  bool has_nodiscard = false;
  bool is_friend = false;
};

/// Finds function declarations whose return type is spelled `type_name`
/// (by value, at paren depth 0). Token-level approximation: see
/// docs/STATIC_ANALYSIS.md for the exact pattern and its blind spots.
std::vector<DeclInfo> find_value_decls(const SourceFile& f,
                                       const std::string& type_name) {
  std::vector<DeclInfo> decls;
  const std::vector<Token>& toks = f.tokens;
  int paren_depth = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == Kind::kPunct) {
      if (t.text == "(") ++paren_depth;
      if (t.text == ")") --paren_depth;
      continue;
    }
    if (paren_depth != 0 || t.kind != Kind::kIdent || t.text != type_name) {
      continue;
    }
    bool is_friend = false;
    if (i > 0) {
      const Token& prev = toks[i - 1];
      if (ident_is(prev, "friend")) {
        is_friend = true;
      } else if (!is_decl_starter(prev)) {
        continue;  // qualified name, template argument, return value, ...
      }
    }
    std::size_t j = i + 1;
    if (type_name == "Result" && j < toks.size() &&
        punct_is(toks[j], "<")) {
      j = skip_template_args(toks, j);
    }
    if (j >= toks.size()) continue;
    if (punct_is(toks[j], "&") || punct_is(toks[j], "*")) {
      continue;  // reference/pointer return: discard is harmless
    }
    if (toks[j].kind != Kind::kIdent || j + 1 >= toks.size() ||
        !punct_is(toks[j + 1], "(")) {
      continue;  // variable declaration, constructor call, ...
    }
    DeclInfo d;
    d.type_index = i;
    d.name_index = j;
    d.is_friend = is_friend;
    // Scan the declaration prefix back to the previous terminator for a
    // [[nodiscard]] attribute.
    for (std::size_t k = i; k-- > 0;) {
      const std::string& back = toks[k].text;
      if (back == ";" || back == "{" || back == "}" || back == ":") break;
      if (ident_is(toks[k], "nodiscard")) {
        d.has_nodiscard = true;
        break;
      }
    }
    decls.push_back(d);
  }
  return decls;
}

/// Collects function names declared in `f` with a non-Status/Result
/// value return type (`T name(`) — used to drop ambiguous names from
/// the discarded-status set.
void collect_other_decl_names(const SourceFile& f,
                              std::set<std::string>& names) {
  const std::vector<Token>& toks = f.tokens;
  int paren_depth = 0;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == Kind::kPunct) {
      if (t.text == "(") ++paren_depth;
      if (t.text == ")") --paren_depth;
      continue;
    }
    if (paren_depth != 0 || t.kind != Kind::kIdent) continue;
    if (t.text == "Status" || t.text == "Result") continue;
    if (i > 0 && !is_decl_starter(toks[i - 1])) continue;
    std::size_t j = i + 1;
    if (punct_is(toks[j], "<")) j = skip_template_args(toks, j);
    if (j + 1 < toks.size() && toks[j].kind == Kind::kIdent &&
        punct_is(toks[j + 1], "(")) {
      names.insert(toks[j].text);
    }
  }
}

// ---- Rule: nodiscard-status ----------------------------------------------

void rule_nodiscard_status(const SourceFile& f,
                           std::vector<Finding>& findings) {
  if (!f.is_header) return;
  for (const char* type_name : {"Status", "Result"}) {
    for (const DeclInfo& d : find_value_decls(f, type_name)) {
      if (d.has_nodiscard || d.is_friend) continue;
      report(findings, f, f.tokens[d.name_index].line, "nodiscard-status",
             "'" + f.tokens[d.name_index].text + "' returns " + type_name +
                 " by value but is not [[nodiscard]]: a dropped error is a "
                 "silently swallowed failure");
    }
  }
}

// ---- Rule: discarded-status ----------------------------------------------

/// Function names that collide with common std container/algorithm
/// members; statement-level calls to these are never flagged (the
/// compiler's [[nodiscard]] diagnostics cover them precisely).
const std::set<std::string>& std_member_names() {
  static const std::set<std::string> kNames = {
      "insert", "erase",  "emplace", "count", "find",  "at",   "get",
      "size",   "reset",  "swap",    "begin", "end",   "load", "store",
      "exchange", "wait", "test",    "clear", "push_back",
  };
  return kNames;
}

const std::set<std::string>& statement_keywords() {
  static const std::set<std::string> kKeywords = {
      "if",     "while",  "for",      "return",   "switch",  "case",
      "do",     "else",   "break",    "continue", "goto",    "using",
      "namespace", "class", "struct", "enum",     "template", "typedef",
      "static_assert", "delete", "throw", "public", "private",
      "protected", "default", "try", "catch", "co_return", "co_await",
      "new", "sizeof", "constexpr", "const", "static", "inline", "auto",
      "void", "bool", "int", "char", "float", "double", "unsigned",
      "signed", "long", "short", "friend", "explicit", "virtual",
      "operator", "extern",
  };
  return kKeywords;
}

void rule_discarded_status(const SourceFile& f,
                           const std::set<std::string>& status_names,
                           std::vector<Finding>& findings) {
  const std::vector<Token>& toks = f.tokens;
  // Statement starts: the token after `;`, `{`, or `}` (plus index 0).
  for (std::size_t s = 0; s < toks.size(); ++s) {
    if (s != 0) {
      const std::string& prev = toks[s - 1].text;
      if (toks[s - 1].kind != Kind::kPunct ||
          (prev != ";" && prev != "{" && prev != "}")) {
        continue;
      }
    }
    if (toks[s].kind != Kind::kIdent) continue;
    if (statement_keywords().count(toks[s].text) > 0) continue;
    // Walk the call chain: ident (:: . ->) ident ... followed by `(`.
    std::size_t j = s;
    std::string name = toks[j].text;
    while (j + 1 < toks.size()) {
      const Token& next = toks[j + 1];
      if (punct_is(next, "::") || punct_is(next, ".") ||
          punct_is(next, "->")) {
        if (j + 2 >= toks.size() || toks[j + 2].kind != Kind::kIdent) break;
        name = toks[j + 2].text;
        j += 2;
        continue;
      }
      break;
    }
    if (j + 1 >= toks.size() || !punct_is(toks[j + 1], "(")) continue;
    if (status_names.count(name) == 0) continue;
    // Find the matching close paren, then require the call to be the
    // whole statement (`);`) for a finding.
    int depth = 0;
    std::size_t k = j + 1;
    for (; k < toks.size(); ++k) {
      if (punct_is(toks[k], "(")) ++depth;
      if (punct_is(toks[k], ")") && --depth == 0) break;
    }
    if (k + 1 < toks.size() && punct_is(toks[k + 1], ";")) {
      report(findings, f, toks[j].line, "discarded-status",
             "call to '" + name + "' discards its Status/Result: "
             "propagate with JIGSAW_RETURN_IF_ERROR, consume the value, "
             "or annotate intent with (void) plus a jigsaw-lint allow");
    }
  }
}

// ---- Rule: bounded-alloc -------------------------------------------------

bool is_bounded_alloc_file(const std::string& path) {
  return path_ends_with(path, "core/serialize.cpp") ||
         path_ends_with(path, "core/format_validate.cpp") ||
         path_contains(path, "lint_fixtures");
}

void rule_bounded_alloc(const SourceFile& f,
                        std::vector<Finding>& findings) {
  if (!is_bounded_alloc_file(f.path) || f.is_header) return;
  const std::vector<Token>& toks = f.tokens;
  static const std::set<std::string> kAllocFns = {
      "malloc", "calloc", "realloc", "strdup", "aligned_alloc"};
  static const std::set<std::string> kGrowers = {"resize", "reserve"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Kind::kIdent) continue;
    if (t.text == "new") {
      report(findings, f, t.line, "bounded-alloc",
             "raw `new` in an untrusted-input file: allocate through a "
             "bounded helper (see core/format_limits.hpp)");
      continue;
    }
    const bool call_like =
        i + 1 < toks.size() && punct_is(toks[i + 1], "(");
    if (call_like && kAllocFns.count(t.text) > 0) {
      report(findings, f, t.line, "bounded-alloc",
             "`" + t.text + "` in an untrusted-input file: allocate "
             "through a bounded helper (see core/format_limits.hpp)");
      continue;
    }
    if (call_like && kGrowers.count(t.text) > 0 && i > 0 &&
        (punct_is(toks[i - 1], ".") || punct_is(toks[i - 1], "->"))) {
      report(findings, f, t.line, "bounded-alloc",
             "`" + t.text + "` sizes an allocation from parsed input: "
             "bound it first (kMaxFormatElements / stream remaining) and "
             "annotate the helper with jigsaw-lint: allow(bounded-alloc)");
      continue;
    }
    // Sized container construction: vector<...> name(expr...) or the
    // temporary form vector<...>(expr...).
    if (t.text == "vector" && i + 1 < toks.size() &&
        punct_is(toks[i + 1], "<")) {
      std::size_t j = skip_template_args(toks, i + 1);
      if (j < toks.size() && toks[j].kind == Kind::kIdent &&
          j + 1 < toks.size()) {
        ++j;  // named declaration: the paren (if any) follows the name
      }
      if (j < toks.size() && punct_is(toks[j], "(") &&
          j + 1 < toks.size() && !punct_is(toks[j + 1], ")")) {
        report(findings, f, toks[j].line, "bounded-alloc",
               "sized vector construction from parsed input: bound the "
               "size first and annotate with jigsaw-lint: "
               "allow(bounded-alloc)");
      }
    }
  }
}

// ---- Rule: no-magic-bounds -----------------------------------------------

bool shares_format_limits(const std::string& path) {
  return path_ends_with(path, "core/serialize.cpp") ||
         path_ends_with(path, "core/format_validate.cpp") ||
         path_ends_with(path, "tools/fuzz_format.cpp") ||
         path_contains(path, "lint_fixtures");
}

void rule_no_magic_bounds(const SourceFile& f,
                          std::vector<Finding>& findings) {
  if (!shares_format_limits(f.path) ||
      path_ends_with(f.path, "format_limits.hpp")) {
    return;
  }
  const std::vector<Token>& toks = f.tokens;
  const auto is_one = [](const Token& t) {
    return t.kind == Kind::kNumber &&
           (t.text == "1" || t.text == "1u" || t.text == "1ul" ||
            t.text == "1ull" || t.text == "1U" || t.text == "1UL" ||
            t.text == "1ULL");
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Kind::kNumber) continue;
    const bool literal_value =
        t.text == "1073741824" || t.text == "0x40000000";
    // `1 << 30` or the braced-init spelling `uint64_t{1} << 30`.
    bool shifted_one = false;
    if (t.text == "30" && i >= 2 && punct_is(toks[i - 1], "<<")) {
      std::size_t lhs = i - 2;
      if (punct_is(toks[lhs], "}") && lhs >= 1) --lhs;
      shifted_one = is_one(toks[lhs]);
    }
    if (literal_value || shifted_one) {
      report(findings, f, t.line, "no-magic-bounds",
             "allocation bound respelled as a literal: use "
             "kMaxFormatElements / kMaxFormatDimension from "
             "core/format_limits.hpp so the loader, validator and fuzzer "
             "cannot drift apart");
    }
  }
}

// ---- Rule: obs-name ------------------------------------------------------

const std::set<std::string>& obs_subsystems() {
  static const std::set<std::string> kSubsystems = {
      "checked", "engine", "format",    "hybrid", "kernel",
      "reorder", "serialize", "tile_cache", "obs",
  };
  return kSubsystems;
}

bool obs_name_valid(const std::string& name) {
  std::vector<std::string> segments;
  std::string current;
  for (char c : name + ".") {
    if (c == '.') {
      if (current.empty()) return false;
      segments.push_back(current);
      current.clear();
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
               c == '_') {
      current += c;
    } else {
      return false;
    }
  }
  return segments.size() >= 2 && obs_subsystems().count(segments[0]) > 0;
}

void rule_obs_name(const SourceFile& f, std::vector<Finding>& findings) {
  const std::vector<Token>& toks = f.tokens;
  static const std::set<std::string> kObsFns = {
      "add", "counter", "gauge", "gauge_set", "observe", "histogram"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (ident_is(toks[i], "JIGSAW_TRACE_SCOPE") && i + 4 < toks.size() &&
        punct_is(toks[i + 1], "(")) {
      if (toks[i + 2].kind == Kind::kString) {
        const std::string& category = toks[i + 2].text;
        if (obs_subsystems().count(category) == 0) {
          report(findings, f, toks[i + 2].line, "obs-name",
                 "span category \"" + category + "\" is not a known "
                 "subsystem (docs/OBSERVABILITY.md naming table)");
        }
      }
      if (punct_is(toks[i + 3], ",") && toks[i + 4].kind == Kind::kString &&
          !obs_name_valid(toks[i + 4].text)) {
        report(findings, f, toks[i + 4].line, "obs-name",
               "span name \"" + toks[i + 4].text + "\" does not match the "
               "`<subsystem>.<noun>[_<unit>]` convention");
      }
      continue;
    }
    if (ident_is(toks[i], "obs") && i + 4 < toks.size() &&
        punct_is(toks[i + 1], "::") && toks[i + 2].kind == Kind::kIdent &&
        kObsFns.count(toks[i + 2].text) > 0 &&
        punct_is(toks[i + 3], "(") &&
        toks[i + 4].kind == Kind::kString &&
        !obs_name_valid(toks[i + 4].text)) {
      report(findings, f, toks[i + 4].line, "obs-name",
             "instrument name \"" + toks[i + 4].text + "\" does not match "
             "the `<subsystem>.<noun>[_<unit>]` convention "
             "(docs/OBSERVABILITY.md)");
    }
  }
}

// ---- Rule: raw-alloc -----------------------------------------------------

void rule_raw_alloc(const SourceFile& f, std::vector<Finding>& findings) {
  if (path_contains(f.path, "common/") &&
      !path_contains(f.path, "lint_fixtures")) {
    return;  // common/ owns the low-level primitives
  }
  const std::vector<Token>& toks = f.tokens;
  static const std::set<std::string> kAllocFns = {"malloc", "calloc",
                                                  "realloc", "free"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Kind::kIdent) continue;
    // `= delete` declarations are not deallocations; `= new T` is a real
    // allocation, so the exclusion applies to `delete` only.
    const bool deleted_fn =
        t.text == "delete" && i > 0 && punct_is(toks[i - 1], "=");
    const bool after_operator = i > 0 && ident_is(toks[i - 1], "operator");
    if ((t.text == "new" || t.text == "delete") && !deleted_fn &&
        !after_operator) {
      report(findings, f, t.line, "raw-alloc",
             "raw `" + t.text + "` outside src/common/: own memory through "
             "containers or smart pointers");
      continue;
    }
    // Member calls that merely share a libc name (x.free(), m->count())
    // are excluded; the std:: qualification is not.
    if (kAllocFns.count(t.text) > 0 && i + 1 < toks.size() &&
        punct_is(toks[i + 1], "(") && !after_operator &&
        !(i > 0 && (punct_is(toks[i - 1], ".") ||
                    punct_is(toks[i - 1], "->")))) {
      report(findings, f, t.line, "raw-alloc",
             "`" + t.text + "` outside src/common/: own memory through "
             "containers or smart pointers");
    }
  }
}

// ---- Rule: hot-path-alloc ------------------------------------------------

/// Allocating container/type heads the hot-path rule watches for.
const std::set<std::string>& hot_path_containers() {
  static const std::set<std::string> kContainers = {
      "vector",        "string",        "basic_string", "deque",
      "list",          "map",           "set",          "multimap",
      "multiset",      "unordered_map", "unordered_set", "stringstream",
      "ostringstream", "istringstream", "function",     "DenseMatrix",
      "CsrMatrix"};
  return kContainers;
}

/// True when toks[j] (an opening paren) starts an expression argument
/// list — a constructor call — rather than a function declaration's
/// parameter list (types). Token-level approximation: expressions open
/// with a literal, or an identifier followed by an operator-ish token.
bool paren_starts_expression(const std::vector<Token>& toks, std::size_t j) {
  if (j + 1 >= toks.size()) return false;
  const Token& a = toks[j + 1];
  if (a.kind == Kind::kNumber || a.kind == Kind::kString) return true;
  if (a.kind != Kind::kIdent || j + 2 >= toks.size()) return false;
  static const std::set<std::string> kExprFollow = {")", ",", ".", "->",
                                                    "(", "["};
  return kExprFollow.count(toks[j + 2].text) > 0;
}

/// Files that opt in with a `// jigsaw-lint: hot-path` tag promise their
/// execute loops construct no containers: every declaration or temporary
/// of an allocating type must carry an allow(hot-path-alloc) naming why
/// that site is cold. Token-level, so function declarations whose
/// parameter lists read as types stay silent.
void rule_hot_path_alloc(const SourceFile& f,
                         std::vector<Finding>& findings) {
  if (!f.hot_path_tagged) return;
  const std::vector<Token>& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Kind::kIdent || hot_path_containers().count(t.text) == 0) {
      continue;
    }
    // Member calls that merely share a name (x.function(), s.set(...)).
    if (i > 0 &&
        (punct_is(toks[i - 1], ".") || punct_is(toks[i - 1], "->"))) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < toks.size() && punct_is(toks[j], "<")) {
      j = skip_template_args(toks, j);
    }
    if (j >= toks.size()) continue;
    bool constructed = false;
    if (punct_is(toks[j], "(")) {
      constructed = paren_starts_expression(toks, j);  // temporary
    } else if (toks[j].kind == Kind::kIdent && j + 1 < toks.size()) {
      // Named declaration: `vector<T> name;` / `= ...` / `{...}` /
      // `(args)`. References and pointers never reach here (the `&`/`*`
      // after the template args fails the ident check).
      const Token& after = toks[j + 1];
      constructed = punct_is(after, ";") || punct_is(after, "=") ||
                    punct_is(after, "{") ||
                    (punct_is(after, "(") &&
                     paren_starts_expression(toks, j + 1));
    }
    if (constructed) {
      report(findings, f, toks[j].line, "hot-path-alloc",
             "`" + t.text + "` constructed in a hot-path file: hoist the "
             "allocation to the caller's arena (common/arena.hpp) or mark "
             "the cold site with jigsaw-lint: allow(hot-path-alloc)");
    }
  }
}

// ---- Rule: header-hygiene ------------------------------------------------

struct SymbolRequirement {
  const char* symbol;
  /// Any one of these includes satisfies the use.
  std::vector<const char*> headers;
};

const std::vector<SymbolRequirement>& iwyu_map() {
  static const std::vector<SymbolRequirement> kMap = {
      {"vector", {"vector"}},
      {"string", {"string"}},
      {"string_view", {"string_view"}},
      {"atomic", {"atomic"}},
      {"mutex", {"mutex"}},
      {"lock_guard", {"mutex"}},
      {"unique_lock", {"mutex"}},
      {"scoped_lock", {"mutex"}},
      {"condition_variable", {"condition_variable"}},
      {"thread", {"thread"}},
      {"future", {"future"}},
      {"promise", {"future"}},
      {"packaged_task", {"future"}},
      {"optional", {"optional"}},
      {"nullopt", {"optional"}},
      {"variant", {"variant"}},
      {"holds_alternative", {"variant"}},
      {"get_if", {"variant"}},
      {"monostate", {"variant"}},
      {"function", {"functional"}},
      {"shared_ptr", {"memory"}},
      {"unique_ptr", {"memory"}},
      {"weak_ptr", {"memory"}},
      {"make_shared", {"memory"}},
      {"make_unique", {"memory"}},
      {"static_pointer_cast", {"memory"}},
      {"unordered_map", {"unordered_map"}},
      {"unordered_set", {"unordered_set"}},
      {"map", {"map"}},
      {"list", {"list"}},
      {"deque", {"deque"}},
      {"array", {"array"}},
      {"pair", {"utility"}},
      {"make_pair", {"utility"}},
      {"move", {"utility"}},
      {"forward", {"utility"}},
      {"exchange", {"utility"}},
      {"declval", {"utility"}},
      {"numeric_limits", {"limits"}},
      {"chrono", {"chrono"}},
      {"uint8_t", {"cstdint"}},
      {"uint16_t", {"cstdint"}},
      {"uint32_t", {"cstdint"}},
      {"uint64_t", {"cstdint"}},
      {"int8_t", {"cstdint"}},
      {"int16_t", {"cstdint"}},
      {"int32_t", {"cstdint"}},
      {"int64_t", {"cstdint"}},
      {"ostream", {"iosfwd", "ostream", "iostream", "sstream", "fstream"}},
      {"istream", {"iosfwd", "istream", "iostream", "sstream", "fstream"}},
      {"ostringstream", {"sstream"}},
      {"istringstream", {"sstream"}},
      {"stringstream", {"sstream"}},
      {"ofstream", {"fstream"}},
      {"ifstream", {"fstream"}},
      {"runtime_error", {"stdexcept"}},
      {"logic_error", {"stdexcept"}},
      {"invalid_argument", {"stdexcept"}},
      {"out_of_range", {"stdexcept"}},
      {"min", {"algorithm"}},
      {"max", {"algorithm"}},
      {"clamp", {"algorithm"}},
      {"sort", {"algorithm"}},
      {"fill", {"algorithm"}},
      {"copy", {"algorithm"}},
      {"transform", {"algorithm"}},
      {"all_of", {"algorithm"}},
      {"any_of", {"algorithm"}},
      {"find_if", {"algorithm"}},
      {"lower_bound", {"algorithm"}},
      {"upper_bound", {"algorithm"}},
  };
  return kMap;
}

void rule_header_hygiene(const SourceFile& f,
                         std::vector<Finding>& findings) {
  if (!f.is_header) return;
  if (!f.has_pragma_once) {
    report(findings, f, 1, "header-hygiene",
           "header lacks #pragma once");
  }
  const std::set<std::string> includes(f.includes.begin(),
                                       f.includes.end());
  std::set<std::string> reported;
  const std::vector<Token>& toks = f.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!ident_is(toks[i], "std") || !punct_is(toks[i + 1], "::") ||
        toks[i + 2].kind != Kind::kIdent) {
      continue;
    }
    const std::string& symbol = toks[i + 2].text;
    for (const SymbolRequirement& req : iwyu_map()) {
      if (symbol != req.symbol) continue;
      bool satisfied = false;
      for (const char* header : req.headers) {
        if (includes.count(header) > 0) satisfied = true;
      }
      if (!satisfied && reported.insert(symbol).second) {
        report(findings, f, toks[i + 2].line, "header-hygiene",
               "header uses std::" + symbol + " but does not include <" +
                   std::string(req.headers.front()) +
                   "> itself (IWYU-lite: headers must be self-contained)");
      }
      break;
    }
  }
}

// ---- Rule: bad-suppression -----------------------------------------------

/// Every rule name an allow() may legitimately reference: this tool's
/// catalog plus the semantic analyzer's (which shares the mechanism).
const std::set<std::string>& known_rules() {
  static const std::set<std::string> kKnown = [] {
    std::set<std::string> all;
    for (const std::string& name : rule_names()) all.insert(name);
    for (const std::string& name : analyzer_rule_names()) all.insert(name);
    return all;
  }();
  return kKnown;
}

/// A suppression that silences nothing (unknown rule) or argues nothing
/// (missing reason) is worse than none: it reads as reviewed-and-waived
/// while waiving nothing, or waives without the mandatory argument. Both
/// were silently accepted before this rule existed.
void rule_bad_suppression(const SourceFile& f,
                          std::vector<Finding>& findings) {
  for (const AllowDirective& d : f.allows) {
    if (d.rules.empty()) {
      report(findings, f, d.line, "bad-suppression",
             "allow() names no rule: spell allow(rule[,rule]): reason");
      continue;
    }
    for (const std::string& rule : d.rules) {
      if (known_rules().count(rule) == 0) {
        report(findings, f, d.line, "bad-suppression",
               "allow(" + rule + ") names an unknown rule (see "
               "--list-rules and docs/STATIC_ANALYSIS.md); the "
               "suppression silences nothing");
      }
    }
    if (!d.has_reason) {
      report(findings, f, d.line, "bad-suppression",
             "allow() without a `): reason` — the justification prose is "
             "mandatory (docs/STATIC_ANALYSIS.md suppression syntax)");
    }
  }
}

}  // namespace

// ---- Public API ----------------------------------------------------------

std::string Finding::to_string() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << rule << "] " << message;
  return os.str();
}

SourceFile parse_source(std::string path, std::string content) {
  SourceFile f;
  f.path = std::move(path);
  f.is_header = path_ends_with(f.path, ".hpp") ||
                path_ends_with(f.path, ".h");
  f.content = std::move(content);
  Lexer lexer(f.content, f);
  lexer.run();
  return f;
}

SourceFile load_source(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    throw std::runtime_error("jigsaw_lint: cannot open " + path);
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse_source(path, buf.str());
}

std::vector<std::string> rule_names() {
  return {"nodiscard-status", "discarded-status", "bounded-alloc",
          "no-magic-bounds",  "obs-name",         "raw-alloc",
          "hot-path-alloc",   "header-hygiene",   "bad-suppression"};
}

std::vector<std::string> analyzer_rule_names() {
  return {"status-propagation", "arena-escape", "rcu-discipline",
          "obs-name-registry"};
}

bool is_suppressed(const SourceFile& f, int line, const std::string& rule) {
  for (const Suppression& s : f.suppressions) {
    if (s.line == line && s.rule == rule) return true;
  }
  return false;
}

std::vector<Finding> run_rules(const std::vector<SourceFile>& files,
                               const std::vector<std::string>& rules) {
  std::set<std::string> active(rules.begin(), rules.end());
  if (active.empty()) {
    for (const std::string& name : rule_names()) active.insert(name);
  }

  // Cross-file context: the Status/Result-returning name set, minus any
  // name also declared with a different value return type (ambiguous for
  // a token-level tool) and minus common std member names.
  std::set<std::string> status_names;
  std::set<std::string> other_names;
  for (const SourceFile& f : files) {
    if (!f.is_header) continue;
    for (const char* type_name : {"Status", "Result"}) {
      for (const DeclInfo& d : find_value_decls(f, type_name)) {
        status_names.insert(f.tokens[d.name_index].text);
      }
    }
    collect_other_decl_names(f, other_names);
  }
  for (const std::string& name : other_names) status_names.erase(name);
  for (const std::string& name : std_member_names()) {
    status_names.erase(name);
  }

  std::vector<Finding> findings;
  for (const SourceFile& f : files) {
    if (active.count("nodiscard-status")) rule_nodiscard_status(f, findings);
    if (active.count("discarded-status")) {
      rule_discarded_status(f, status_names, findings);
    }
    if (active.count("bounded-alloc")) rule_bounded_alloc(f, findings);
    if (active.count("no-magic-bounds")) rule_no_magic_bounds(f, findings);
    if (active.count("obs-name")) rule_obs_name(f, findings);
    if (active.count("raw-alloc")) rule_raw_alloc(f, findings);
    if (active.count("hot-path-alloc")) rule_hot_path_alloc(f, findings);
    if (active.count("header-hygiene")) rule_header_hygiene(f, findings);
    if (active.count("bad-suppression")) rule_bad_suppression(f, findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  for (const std::string& path : paths) {
    if (fs::is_directory(path)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".hpp" || ext == ".cpp" || ext == ".h") {
          out.push_back(entry.path().string());
        }
      }
    } else if (fs::is_regular_file(path)) {
      out.push_back(path);
    } else {
      throw std::runtime_error("jigsaw_lint: no such file or directory: " +
                               path);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace jigsaw::lint
