// jigsaw_lint CLI: lint a set of files/directories, print findings as
// `path:line: [rule] message`, exit non-zero when anything fires.
//
//   jigsaw_lint src/                       # the CI gate
//   jigsaw_lint --rule obs-name src/obs    # one rule, one subtree
//   jigsaw_lint --exclude lint_fixtures tests/
//   jigsaw_lint --list-rules
#include <cstring>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

const char kUsage[] =
    "usage: jigsaw_lint [--rule NAME]... [--exclude SUBSTR]... "
    "[--list-rules] PATH...\n";

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::vector<std::string> rules;
  std::vector<std::string> excludes;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rule") == 0 && i + 1 < argc) {
      rules.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--exclude") == 0 && i + 1 < argc) {
      excludes.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const std::string& name : jigsaw::lint::rule_names()) {
        std::cout << name << "\n";
      }
      return 0;
    } else if (argv[i][0] == '-') {
      std::cerr << kUsage;
      return 2;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  try {
    const std::vector<std::string> sources =
        jigsaw::lint::collect_sources(paths);
    std::vector<jigsaw::lint::SourceFile> files;
    files.reserve(sources.size());
    for (const std::string& path : sources) {
      bool excluded = false;
      for (const std::string& sub : excludes) {
        if (path.find(sub) != std::string::npos) excluded = true;
      }
      if (excluded) continue;
      files.push_back(jigsaw::lint::load_source(path));
    }
    const std::vector<jigsaw::lint::Finding> findings =
        jigsaw::lint::run_rules(files, rules);
    for (const jigsaw::lint::Finding& f : findings) {
      std::cout << f.to_string() << "\n";
    }
    std::cerr << "jigsaw_lint: " << files.size() << " files, "
              << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << "\n";
    return findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
