// Deterministic blob fuzzer for the checked serialization path.
//
// Builds a healthy v2 format image, then applies `--iters` independent
// random mutations (bit flips, multi-byte scrambles, truncations, length
// field edits — see testing/fault_injection.hpp) and feeds each mutant to
// load_format_checked. The contract under test:
//
//   * the loader never crashes, hangs, or throws on any mutant;
//   * a mutant identical to the original must load OK;
//   * any mutant that differs from the original must be rejected with a
//     non-OK Status (the CRCs make a silent single-bit acceptance
//     impossible; a multi-byte scramble colliding with a valid CRC has
//     probability ~2^-32 and the seeds are fixed).
//
// Everything is derived from --seed, so a failure replays exactly:
//   fuzz_format --iters 300 --seed 7
// A short run is registered as the ctest case `fuzz_format_short`.
//
// Corpus modes turn past fuzzer coverage into a tracked regression test:
//   fuzz_format --write-corpus tests/corpus   # distill interesting mutants
//   fuzz_format --corpus tests/corpus         # deterministic replay (ctest
//                                             # case `fuzz_corpus_replay`)
// Corpus files are named for their expected verdict: `ok_*` must load,
// `reject_*` must be refused with a non-OK Status.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/format_limits.hpp"
#include "core/serialize.hpp"
#include "matrix/vector_sparse.hpp"
#include "testing/fault_injection.hpp"

namespace {

jigsaw::core::JigsawFormat sample_format(std::uint64_t seed) {
  jigsaw::VectorSparseOptions o;
  o.rows = 64;
  o.cols = 96;
  o.vector_width = 4;
  o.sparsity = 0.85;
  o.seed = seed;
  const auto a = jigsaw::VectorSparseGenerator::generate(o).values();
  jigsaw::core::ReorderOptions opts;
  opts.tile.block_tile_m = 32;
  return jigsaw::core::JigsawFormat::build(
      a, jigsaw::core::multi_granularity_reorder(a, opts));
}

jigsaw::Status load_status(const std::string& blob) {
  std::istringstream is(blob, std::ios::binary);
  return jigsaw::core::load_format_checked(is).status();
}

/// Deterministic hostile-header probe: patch the first array's length
/// field to one past kMaxFormatElements (the bound shared with the
/// loader and validator through core/format_limits.hpp) and require the
/// loader to refuse *before* any allocation-sized read. A regression
/// here means the element bound and the code enforcing it drifted apart.
bool check_hostile_length(const std::string& healthy) {
  // v2 header: magic(4) + version(4) + rows(8) + cols(8) + block_tile(4)
  // + layout(1) + header CRC(4) = 33 bytes; the panel-array length
  // field (u64, little-endian) follows immediately.
  constexpr std::size_t kLengthOffset = 33;
  if (healthy.size() < kLengthOffset + sizeof(std::uint64_t)) {
    std::cerr << "FAIL: healthy blob too short for the hostile-length probe\n";
    return false;
  }
  std::string mutant = healthy;
  const std::uint64_t hostile = jigsaw::core::kMaxFormatElements + 1;
  std::memcpy(mutant.data() + kLengthOffset, &hostile, sizeof(hostile));
  const jigsaw::Status s = load_status(mutant);
  if (s.ok()) {
    std::cerr << "FAIL: blob declaring " << hostile
              << " panel headers loaded OK\n";
    return false;
  }
  if (s.code() != jigsaw::StatusCode::kInvalidFormat) {
    std::cerr << "FAIL: over-limit length field rejected as "
              << s.to_string() << ", want invalid-format (the element "
              << "bound must trip before any payload read)\n";
    return false;
  }
  return true;
}

/// Distills the mutation space into a small committed corpus: the healthy
/// blob plus the first mutant hitting each distinct rejection code, plus
/// structural truncations (empty, header-only, one byte short). Everything
/// derives from `seed`, so regenerating with the same seed is idempotent.
int write_corpus(const std::filesystem::path& dir, std::uint64_t seed,
                 std::uint64_t iters) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  const jigsaw::testing::FormatSurgeon surgeon(sample_format(seed));
  const std::string healthy = surgeon.blob();

  const auto dump = [&](const std::string& name, const std::string& bytes) {
    std::ofstream os(dir / name, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!os) {
      std::cerr << "FAIL: cannot write " << (dir / name).string() << "\n";
      return false;
    }
    return true;
  };

  if (!dump("ok_healthy.bin", healthy)) return 1;
  std::size_t written = 1;

  // Structural edge cases the random mutator only hits by luck.
  const std::vector<std::pair<std::string, std::string>> structural = {
      {"reject_empty.bin", std::string()},
      {"reject_header_only.bin", healthy.substr(0, std::min<std::size_t>(
                                                       16, healthy.size()))},
      {"reject_one_byte_short.bin", healthy.substr(0, healthy.size() - 1)},
  };
  for (const auto& [name, bytes] : structural) {
    if (load_status(bytes).ok()) {
      std::cerr << "FAIL: structural corpus candidate " << name
                << " unexpectedly loads OK\n";
      return 1;
    }
    if (!dump(name, bytes)) return 1;
    ++written;
  }

  // One representative mutant per distinct rejection StatusCode.
  bool have_code[16] = {};
  for (std::uint64_t i = 0; i < iters; ++i) {
    jigsaw::Rng rng(jigsaw::mix_seed(seed, i + 1));
    const std::string mutant = jigsaw::testing::random_mutation(healthy, rng);
    if (mutant == healthy) continue;
    const jigsaw::Status s = load_status(mutant);
    if (s.ok()) {
      std::cerr << "FAIL: iter " << i << ": corrupted blob accepted\n";
      return 1;
    }
    const auto code = static_cast<std::size_t>(s.code()) & 0xf;
    if (have_code[code]) continue;
    have_code[code] = true;
    const std::string name =
        std::string("reject_") +
        jigsaw::to_string(static_cast<jigsaw::StatusCode>(code)) + "_iter" +
        std::to_string(i) + ".bin";
    if (!dump(name, mutant)) return 1;
    ++written;
  }

  std::cout << "fuzz_format: wrote " << written << " corpus files to "
            << dir.string() << "\n";
  return 0;
}

/// Replays every corpus file; the filename prefix encodes the verdict.
int replay_corpus(const std::filesystem::path& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    std::cerr << "FAIL: corpus directory " << dir.string() << " not found\n";
    return 1;
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "FAIL: corpus directory " << dir.string() << " is empty\n";
    return 1;
  }

  std::size_t checked = 0;
  for (const fs::path& path : files) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string blob = buf.str();
    const std::string name = path.filename().string();
    const jigsaw::Status s = load_status(blob);
    if (name.rfind("ok_", 0) == 0 && !s.ok()) {
      std::cerr << "FAIL: " << name << " must load but was rejected: "
                << s.to_string() << "\n";
      return 1;
    }
    if (name.rfind("reject_", 0) == 0 && s.ok()) {
      std::cerr << "FAIL: " << name << " must be rejected but loaded OK\n";
      return 1;
    }
    ++checked;
  }
  std::cout << "fuzz_format: replayed " << checked << " corpus files from "
            << dir.string() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iters = 300;
  std::uint64_t seed = 7;
  std::string corpus_dir;
  std::string write_corpus_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::stoull(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (std::strcmp(argv[i], "--corpus") == 0 && i + 1 < argc) {
      corpus_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--write-corpus") == 0 && i + 1 < argc) {
      write_corpus_dir = argv[++i];
    } else {
      std::cerr << "usage: fuzz_format [--iters N] [--seed S]"
                   " [--corpus DIR | --write-corpus DIR]\n";
      return 2;
    }
  }
  if (!corpus_dir.empty()) return replay_corpus(corpus_dir);
  if (!write_corpus_dir.empty()) {
    return write_corpus(write_corpus_dir, seed, iters);
  }

  const jigsaw::testing::FormatSurgeon surgeon(sample_format(seed));
  const std::string healthy = surgeon.blob();
  {
    std::istringstream is(healthy, std::ios::binary);
    const auto r = jigsaw::core::load_format_checked(is);
    if (!r.ok()) {
      std::cerr << "FAIL: healthy blob rejected: " << r.status().to_string()
                << "\n";
      return 1;
    }
  }
  if (!check_hostile_length(healthy)) return 1;

  std::uint64_t rejected = 0, unchanged = 0;
  std::uint64_t by_code[16] = {};
  for (std::uint64_t i = 0; i < iters; ++i) {
    jigsaw::Rng rng(jigsaw::mix_seed(seed, i + 1));
    const std::string mutant = jigsaw::testing::random_mutation(healthy, rng);
    std::istringstream is(mutant, std::ios::binary);
    const jigsaw::Status s =
        jigsaw::core::load_format_checked(is).status();
    if (mutant == healthy) {
      // The mutation landed as a no-op (e.g. truncation at full size);
      // the blob is still valid and must load.
      ++unchanged;
      if (!s.ok()) {
        std::cerr << "FAIL: iter " << i << " (seed " << seed
                  << "): unmutated blob rejected: " << s.to_string() << "\n";
        return 1;
      }
      continue;
    }
    if (s.ok()) {
      std::cerr << "FAIL: iter " << i << " (seed " << seed
                << "): corrupted blob silently accepted\n";
      return 1;
    }
    ++rejected;
    ++by_code[static_cast<std::size_t>(s.code()) & 0xf];
  }

  std::cout << "fuzz_format: " << iters << " mutants over a "
            << healthy.size() << "-byte blob, " << rejected << " rejected, "
            << unchanged << " no-op\n";
  for (std::size_t c = 0; c < 16; ++c) {
    if (by_code[c] == 0) continue;
    std::cout << "  " << jigsaw::to_string(static_cast<jigsaw::StatusCode>(c))
              << ": " << by_code[c] << "\n";
  }
  return 0;
}
