// Deterministic blob fuzzer for the checked serialization path.
//
// Builds a healthy v2 format image, then applies `--iters` independent
// random mutations (bit flips, multi-byte scrambles, truncations, length
// field edits — see testing/fault_injection.hpp) and feeds each mutant to
// load_format_checked. The contract under test:
//
//   * the loader never crashes, hangs, or throws on any mutant;
//   * a mutant identical to the original must load OK;
//   * any mutant that differs from the original must be rejected with a
//     non-OK Status (the CRCs make a silent single-bit acceptance
//     impossible; a multi-byte scramble colliding with a valid CRC has
//     probability ~2^-32 and the seeds are fixed).
//
// Everything is derived from --seed, so a failure replays exactly:
//   fuzz_format --iters 300 --seed 7
// A short run is registered as the ctest case `fuzz_format_short`.
#include <cstdint>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "core/serialize.hpp"
#include "matrix/vector_sparse.hpp"
#include "testing/fault_injection.hpp"

namespace {

jigsaw::core::JigsawFormat sample_format(std::uint64_t seed) {
  jigsaw::VectorSparseOptions o;
  o.rows = 64;
  o.cols = 96;
  o.vector_width = 4;
  o.sparsity = 0.85;
  o.seed = seed;
  const auto a = jigsaw::VectorSparseGenerator::generate(o).values();
  jigsaw::core::ReorderOptions opts;
  opts.tile.block_tile_m = 32;
  return jigsaw::core::JigsawFormat::build(
      a, jigsaw::core::multi_granularity_reorder(a, opts));
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iters = 300;
  std::uint64_t seed = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::stoull(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else {
      std::cerr << "usage: fuzz_format [--iters N] [--seed S]\n";
      return 2;
    }
  }

  const jigsaw::testing::FormatSurgeon surgeon(sample_format(seed));
  const std::string healthy = surgeon.blob();
  {
    std::istringstream is(healthy, std::ios::binary);
    const auto r = jigsaw::core::load_format_checked(is);
    if (!r.ok()) {
      std::cerr << "FAIL: healthy blob rejected: " << r.status().to_string()
                << "\n";
      return 1;
    }
  }

  std::uint64_t rejected = 0, unchanged = 0;
  std::uint64_t by_code[16] = {};
  for (std::uint64_t i = 0; i < iters; ++i) {
    jigsaw::Rng rng(jigsaw::mix_seed(seed, i + 1));
    const std::string mutant = jigsaw::testing::random_mutation(healthy, rng);
    std::istringstream is(mutant, std::ios::binary);
    const jigsaw::Status s =
        jigsaw::core::load_format_checked(is).status();
    if (mutant == healthy) {
      // The mutation landed as a no-op (e.g. truncation at full size);
      // the blob is still valid and must load.
      ++unchanged;
      if (!s.ok()) {
        std::cerr << "FAIL: iter " << i << " (seed " << seed
                  << "): unmutated blob rejected: " << s.to_string() << "\n";
        return 1;
      }
      continue;
    }
    if (s.ok()) {
      std::cerr << "FAIL: iter " << i << " (seed " << seed
                << "): corrupted blob silently accepted\n";
      return 1;
    }
    ++rejected;
    ++by_code[static_cast<std::size_t>(s.code()) & 0xf];
  }

  std::cout << "fuzz_format: " << iters << " mutants over a "
            << healthy.size() << "-byte blob, " << rejected << " rejected, "
            << unchanged << " no-op\n";
  for (std::size_t c = 0; c < 16; ++c) {
    if (by_code[c] == 0) continue;
    std::cout << "  " << jigsaw::to_string(static_cast<jigsaw::StatusCode>(c))
              << ": " << by_code[c] << "\n";
  }
  return 0;
}
