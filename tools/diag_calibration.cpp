// Internal calibration probe: prints duration breakdowns of every kernel
// on representative configurations, used to tune the latency-model
// constants against the paper's Table 2 / Figure 12 magnitudes.
#include <iostream>

#include "baselines/jigsaw_adapter.hpp"
#include "baselines/spmm_kernel.hpp"
#include "core/kernel.hpp"
#include "dlmc/suite.hpp"

using namespace jigsaw;

namespace {
void show(const std::string& tag, const gpusim::KernelReport& r) {
  const auto& b = r.breakdown;
  std::cout << tag << ": dur=" << r.duration_cycles << " [" << r.name
            << "] limiter=" << b.limiter_name() << " tc=" << b.tensor_core
            << " cuda=" << b.cuda_core << " smem=" << b.shared_memory
            << " issue=" << b.issue << " dram=" << b.dram << " l2=" << b.l2
            << " stalls=" << b.stalls << " barriers=" << b.barriers
            << " blocks=" << r.launch.blocks
            << " warps/sm=" << r.occupancy.warps_per_sm << "\n";
}
}  // namespace

int main(int argc, char** argv) {
  const double s = argc > 1 ? std::atof(argv[1]) : 0.95;
  const std::size_t v = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;
  gpusim::CostModel cm;
  const baselines::SpmmRunOptions cost_only{.compute_values = false};
  for (const dlmc::Shape shape : {dlmc::Shape{512, 512}, dlmc::Shape{2048, 512}, dlmc::Shape{512, 2048}}) {
    for (const std::size_t n : {256u, 512u}) {
      std::cout << "== " << shape.label() << " N=" << n << " s=" << s
                << " v=" << v << "\n";
      const auto a = dlmc::make_lhs(shape, s, v);
      const auto b = dlmc::make_rhs(shape.k, n);
      auto kernels = baselines::make_baselines();
      kernels.push_back(std::make_unique<baselines::JigsawSpmmKernel>());
      double dense = 0;
      for (const auto& k : kernels) {
        const auto r = k->run(a, b, cm, cost_only);
        if (k->name() == "cuBLAS") dense = r.report.duration_cycles;
        show(k->name(), r.report);
      }
      std::cout << "  speedups vs cuBLAS:";
      for (const auto& k : kernels) {
        const auto r = k->run(a, b, cm, cost_only);
        std::cout << " " << k->name() << "=" << dense / r.report.duration_cycles;
      }
      std::cout << "\n";
      // ablation versions
      for (const auto ver : {core::KernelVersion::kV0, core::KernelVersion::kV1,
                             core::KernelVersion::kV2, core::KernelVersion::kV3}) {
        core::EngineOptions::Compile po;
        po.version = ver;
        po.block_tile = 64;
        const auto plan = core::jigsaw_plan(a.values(), po);
        const auto r = core::jigsaw_run(plan, b, cm, {.compute_values = false});
        show(std::string("jigsaw_") + core::to_string(ver), r.report);
        std::cout << "    speedup=" << dense / r.report.duration_cycles << "\n";
      }
    }
  }
  return 0;
}
