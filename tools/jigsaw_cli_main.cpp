// Thin entry point of the `jigsaw` command-line tool; all logic lives in
// src/cli so tests can drive the full command surface in-process.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> tokens(argv + 1, argv + argc);
  return jigsaw::cli::cli_main(tokens, std::cout, std::cerr);
}
