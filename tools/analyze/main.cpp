// jigsaw_analyze CLI: run the semantic dataflow rules over a set of
// files/directories, print findings as `path:line: [rule] message`, exit
// non-zero when anything fires.
//
//   jigsaw_analyze --obs-registry docs/OBS_REGISTRY.md
//       --obs-docs docs/OBSERVABILITY.md src/          # the CI gate
//   jigsaw_analyze --rule arena-escape src/engine      # one rule
//   jigsaw_analyze --write-obs-registry docs/OBS_REGISTRY.md src/
//   jigsaw_analyze --list-rules
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "lint/lint.hpp"

namespace {

const char kUsage[] =
    "usage: jigsaw_analyze [--rule NAME]... [--exclude SUBSTR]...\n"
    "                      [--obs-registry FILE] [--obs-docs FILE]\n"
    "                      [--write-obs-registry FILE] [--list-rules]\n"
    "                      PATH...\n";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("jigsaw_analyze: cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::vector<std::string> rules;
  std::vector<std::string> excludes;
  jigsaw::analyze::Options opts;
  std::string write_registry;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rule") == 0 && i + 1 < argc) {
      rules.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--exclude") == 0 && i + 1 < argc) {
      excludes.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--obs-registry") == 0 && i + 1 < argc) {
      opts.registry_path = argv[++i];
    } else if (std::strcmp(argv[i], "--obs-docs") == 0 && i + 1 < argc) {
      opts.docs_path = argv[++i];
    } else if (std::strcmp(argv[i], "--write-obs-registry") == 0 &&
               i + 1 < argc) {
      write_registry = argv[++i];
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const std::string& name : jigsaw::analyze::rule_names()) {
        std::cout << name << "\n";
      }
      return 0;
    } else if (argv[i][0] == '-') {
      std::cerr << kUsage;
      return 2;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  try {
    const std::vector<std::string> sources =
        jigsaw::lint::collect_sources(paths);
    std::vector<jigsaw::lint::SourceFile> files;
    files.reserve(sources.size());
    for (const std::string& path : sources) {
      bool excluded = false;
      for (const std::string& sub : excludes) {
        if (path.find(sub) != std::string::npos) excluded = true;
      }
      if (excluded) continue;
      files.push_back(jigsaw::lint::load_source(path));
    }

    if (!write_registry.empty()) {
      std::ofstream out(write_registry, std::ios::binary);
      if (!out) {
        std::cerr << "jigsaw_analyze: cannot write " << write_registry << "\n";
        return 2;
      }
      out << jigsaw::analyze::generate_obs_registry(files);
      std::cerr << "jigsaw_analyze: wrote " << write_registry << " from "
                << files.size() << " files\n";
      return 0;
    }

    if (!opts.registry_path.empty()) {
      opts.registry_content = read_file(opts.registry_path);
    }
    if (!opts.docs_path.empty()) {
      opts.docs_content = read_file(opts.docs_path);
    }
    const std::vector<jigsaw::lint::Finding> findings =
        jigsaw::analyze::run_rules(files, rules, opts);
    for (const jigsaw::lint::Finding& f : findings) {
      std::cout << f.to_string() << "\n";
    }
    std::cerr << "jigsaw_analyze: " << files.size() << " files, "
              << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << "\n";
    return findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
