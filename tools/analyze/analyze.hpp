// jigsaw_analyze: a semantic dataflow pass over the C++ sources.
//
// Where jigsaw_lint (tools/lint/) is token-level — one rule looks at one
// token window — this tool upgrades the same lexer into a lightweight
// C++-subset parser: per-file scope tracking (namespace / class /
// function frames), class member tables with `GUARDED_BY` annotations,
// function body token ranges, and a cross-file view of guarded members
// and observability names. On top of that model it runs dataflow rules
// that no token window can express (docs/STATIC_ANALYSIS.md):
//
//   status-propagation  every local of type Status/Result<T> must be
//                       consulted after it is produced — returned,
//                       compared, .ok()-checked, or passed on. Catches
//                       the path [[nodiscard]] misses: a status stored
//                       into a named local and then dropped.
//   arena-escape        pointers derived from Arena/ArenaScope
//                       allocations (src/common/arena.hpp) may not be
//                       stored to class members, globals, or statics,
//                       nor captured by reference into a deferred task
//                       (ThreadPool::submit / std::async) — the arena
//                       reclaims them at scope exit.
//   rcu-discipline      members annotated GUARDED_BY(mu) are only
//                       touched in their own class's methods with `mu`
//                       held; every weak_ptr member of Lineage carries
//                       a GUARDED_BY; `std::atomic<std::weak_ptr>` is
//                       banned repo-wide (the GCC 12 _Sp_atomic
//                       relaxed-unlock TSan trap that forced the
//                       mutex-guarded lineage head stays fixed).
//   obs-name-registry   every metric/span name literal used in code
//                       appears exactly once in the generated canonical
//                       registry (docs/OBS_REGISTRY.md), the registry
//                       carries no stale entries, and every name
//                       documented in docs/OBSERVABILITY.md exists in
//                       the registry.
//
// Suppression shares jigsaw_lint's mechanism: a comment starting with
// `// jigsaw-analyze: allow(rule[,rule]): reason` (or the jigsaw-lint:
// tag) on the flagged line or in the block immediately above. Malformed
// directives are jigsaw_lint's bad-suppression findings.
//
// Like the linter, the parser errs on the side of silence: constructs it
// cannot classify (macros, template metaprogramming, qualified accesses
// to non-unique member names) produce no model and therefore no finding.
#pragma once

#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace jigsaw::analyze {

/// One data member of a class, as parsed from the class body. `guarded_by`
/// is the mutex name from a trailing `GUARDED_BY(mu)` / `PT_GUARDED_BY(mu)`
/// annotation (empty when unannotated) — the analyzer reads the annotation
/// tokens from source text, so this works under compilers where the macro
/// expands to nothing.
struct Member {
  std::string name;
  std::string type;  ///< the declaration's type tokens, space-joined
  std::string guarded_by;
  int line = 0;
};

/// One class/struct with its member table.
struct StructInfo {
  std::string name;
  std::vector<Member> members;
  int line = 0;
};

/// One function definition with its token extent. `sig_begin` points at
/// the first token of the declaration head (return type), `body_begin`/
/// `body_end` delimit the tokens between the braces. `class_name` is the
/// enclosing class for in-class definitions or the last `Cls::` qualifier
/// for out-of-line ones (empty for free functions).
struct Function {
  std::string name;
  std::string class_name;
  std::size_t sig_begin = 0;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  int line = 0;
};

/// The per-file semantic model built on top of lint::SourceFile tokens.
struct FileModel {
  const lint::SourceFile* file = nullptr;
  std::vector<StructInfo> structs;
  std::vector<Function> functions;
  std::vector<std::string> globals;  ///< namespace-scope variable names
};

/// Parses `f`'s token stream into scopes, member tables and function
/// bodies. Never throws on odd code — unparseable regions are dropped.
FileModel build_model(const lint::SourceFile& f);

/// Side inputs for the obs-name-registry rule. When `registry_path` is
/// empty the registry cross-check is skipped (the in-code duplicate scan
/// still runs); when `docs_path` is empty the docs-drift check is skipped.
struct Options {
  std::string registry_path;
  std::string registry_content;
  std::string docs_path;
  std::string docs_content;
};

/// Runs every rule (or only `rules`, when non-empty) over the file set.
/// Cross-file context (guarded members, the obs name inventory) is built
/// from the same set, so callers analyze a coherent tree at once.
std::vector<lint::Finding> run_rules(const std::vector<lint::SourceFile>& files,
                                     const std::vector<std::string>& rules = {},
                                     const Options& opts = {});

/// The rule names run_rules knows, in catalog order. Pinned against
/// lint::analyzer_rule_names() by tests/test_analyze.cpp.
std::vector<std::string> rule_names();

/// Renders the canonical observability-name registry for the file set —
/// the exact content of docs/OBS_REGISTRY.md. Deterministic: sorted,
/// deduplicated, one `- \`name\`` bullet per entry.
std::string generate_obs_registry(const std::vector<lint::SourceFile>& files);

}  // namespace jigsaw::analyze
