#include "analyze/analyze.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace jigsaw::analyze {
namespace {

using lint::Finding;
using lint::SourceFile;
using lint::Token;

bool is_ident(const Token& t, const char* text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

// ---- Parser --------------------------------------------------------------
//
// A single forward pass over the token stream with an explicit scope
// stack. Every `{` is classified from its statement head (the tokens
// since the last `;`/`{`/`}` at the current level): namespace, class,
// function body, or plain block. Anything ambiguous becomes a plain
// block — the rules then see no model for that region and stay silent.

struct Scope {
  enum class Kind : unsigned char { kNamespace, kClass, kFunction, kBlock };
  Kind kind = Kind::kBlock;
  int struct_index = -1;    // into FileModel::structs for kClass
  int function_index = -1;  // into FileModel::functions for kFunction
};

// Index of the token after the group opened at `open` (`(`/`{`/`[` and
// their closers), or tokens.size() when unbalanced.
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "(" || t == "{" || t == "[") ++depth;
    if (t == ")" || t == "}" || t == "]") {
      if (--depth == 0) return i + 1;
    }
  }
  return toks.size();
}

// A constructor head `Foo(...) : a_(1), b_{2}` may hide brace-init
// groups in its init list; the function body is the first top-level `{`
// after the last init entry. `colon` points at the init-list `:`.
std::size_t find_ctor_body(const std::vector<Token>& toks, std::size_t colon) {
  std::size_t j = colon + 1;
  while (j < toks.size()) {
    // Skip the entry's qualified name / template arguments to its group.
    while (j < toks.size() && toks[j].text != "(" && toks[j].text != "{") ++j;
    if (j >= toks.size()) return toks.size();
    j = skip_balanced(toks, j);
    if (j < toks.size() && toks[j].text == ",") {
      ++j;
      continue;
    }
    break;  // toks[j] is the body `{` (or the stream ended mid-head)
  }
  return j;
}

// Extracts a member declaration from class-body tokens [begin, end)
// ending at `;`. Returns false for anything that is not a data member
// (method declarations, using-aliases, friends, access labels).
bool parse_member(const std::vector<Token>& toks, std::size_t begin,
                  std::size_t end, Member& out) {
  // Strip leading access labels (`public :`) left in the head.
  while (begin + 1 < end &&
         (is_ident(toks[begin], "public") || is_ident(toks[begin], "private") ||
          is_ident(toks[begin], "protected")) &&
         is_punct(toks[begin + 1], ":")) {
    begin += 2;
  }
  if (begin >= end) return false;
  static const std::set<std::string> kSkipLead = {
      "using", "typedef", "friend", "template", "static_assert",
      "enum",  "class",   "struct", "union",    "operator"};
  if (kSkipLead.count(toks[begin].text) > 0) return false;

  // Find a trailing GUARDED_BY(mu) / PT_GUARDED_BY(mu) annotation; its
  // parens must not count as a method parameter list.
  std::size_t anno = end;
  for (std::size_t i = begin; i + 3 < end; ++i) {
    if ((is_ident(toks[i], "GUARDED_BY") || is_ident(toks[i], "PT_GUARDED_BY")) &&
        is_punct(toks[i + 1], "(") && toks[i + 2].kind == Token::Kind::kIdent) {
      out.guarded_by = toks[i + 2].text;
      anno = i;
      break;
    }
  }

  // A `(` before the annotation means a method or a function pointer —
  // not a plain data member. Bit-fields (`int x : 3`) are fine.
  std::size_t name_end = anno;  // past-the-end of the declarator
  for (std::size_t i = begin; i < anno; ++i) {
    if (toks[i].text == "(") return false;
    if (toks[i].text == "=" || toks[i].text == "{") {
      name_end = i;
      break;
    }
  }
  // The member name is the last identifier of the declarator.
  for (std::size_t i = name_end; i > begin; --i) {
    const Token& t = toks[i - 1];
    if (t.kind == Token::Kind::kIdent) {
      out.name = t.text;
      out.line = t.line;
      std::string type;
      for (std::size_t j = begin; j + 1 < i; ++j) {
        if (!type.empty()) type += ' ';
        type += toks[j].text;
      }
      out.type = type;
      return !out.name.empty() && !type.empty();
    }
    if (t.kind == Token::Kind::kNumber) continue;  // bit-field width
    if (is_punct(t, ":")) continue;
    break;
  }
  return false;
}

// Namespace-scope variable name from head tokens [begin, end), or "".
std::string parse_global(const std::vector<Token>& toks, std::size_t begin,
                         std::size_t end) {
  if (begin >= end) return "";
  static const std::set<std::string> kSkipLead = {
      "using",  "typedef", "template", "friend", "class",  "struct",
      "union",  "enum",    "extern",   "static_assert", "namespace"};
  if (kSkipLead.count(toks[begin].text) > 0) return "";
  std::size_t name_end = end;
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].text == "(") return "";  // function declaration
    if (toks[i].text == "=" || toks[i].text == "{" || toks[i].text == "[") {
      name_end = i;
      break;
    }
  }
  for (std::size_t i = name_end; i > begin + 1; --i) {
    if (toks[i - 1].kind == Token::Kind::kIdent) return toks[i - 1].text;
  }
  return "";
}

}  // namespace

FileModel build_model(const SourceFile& f) {
  FileModel model;
  model.file = &f;
  const std::vector<Token>& toks = f.tokens;
  std::vector<Scope> stack;
  std::size_t head = 0;  // statement-head start

  auto in_function = [&] {
    for (const Scope& s : stack) {
      if (s.kind == Scope::Kind::kFunction) return true;
    }
    return false;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& text = toks[i].text;
    if (text == "{") {
      Scope scope;
      if (!in_function() && head < i) {
        if (is_ident(toks[head], "namespace")) {
          scope.kind = Scope::Kind::kNamespace;
        } else if (is_ident(toks[head], "enum")) {
          scope.kind = Scope::Kind::kBlock;
        } else {
          // The head's first `(`, any top-level `=`, and the position of
          // the last class-keyword decide between initializer, class and
          // function. A `class`/`struct` after the parens (`alignas(8)
          // struct X`) is still a class head; one before them (`template
          // <class T> void f(...)`) is not.
          std::size_t paren = i;
          bool has_eq = false;
          for (std::size_t j = head; j < i; ++j) {
            if (toks[j].text == "(") {
              paren = j;
              break;
            }
            if (toks[j].text == "=") has_eq = true;
          }
          std::size_t class_kw = i;  // i = not found
          for (std::size_t j = i; j > head; --j) {
            const std::string& k = toks[j - 1].text;
            if (k == "class" || k == "struct" || k == "union") {
              class_kw = j - 1;
              break;
            }
          }
          const bool is_class = class_kw < i && !has_eq &&
                                (paren == i || class_kw > paren);
          if (is_class) {
            scope.kind = Scope::Kind::kClass;
            StructInfo info;
            info.line = toks[class_kw].line;
            if (class_kw + 1 < i &&
                toks[class_kw + 1].kind == Token::Kind::kIdent &&
                toks[class_kw + 1].text != "final") {
              info.name = toks[class_kw + 1].text;
            }
            scope.struct_index = static_cast<int>(model.structs.size());
            model.structs.push_back(info);
          } else if (has_eq || paren == i) {
            scope.kind = Scope::Kind::kBlock;  // initializer or bare block
          } else {
            // Function definition. Name: identifier before the parameter
            // list; class: enclosing class frame or `Cls::` qualifier.
            Function fn;
            fn.sig_begin = head;
            fn.line = toks[head].line;
            if (paren > head && toks[paren - 1].kind == Token::Kind::kIdent) {
              fn.name = toks[paren - 1].text;
              if (paren >= 3 && is_punct(toks[paren - 2], "::") &&
                  toks[paren - 3].kind == Token::Kind::kIdent) {
                fn.class_name = toks[paren - 3].text;
              }
            }
            if (fn.class_name.empty()) {
              for (std::size_t s = stack.size(); s > 0; --s) {
                if (stack[s - 1].kind == Scope::Kind::kClass) {
                  fn.class_name =
                      model.structs[stack[s - 1].struct_index].name;
                  break;
                }
              }
            }
            // A ctor init list can hide brace-init groups before the
            // real body; jump to the body brace.
            std::size_t close = skip_balanced(toks, paren);
            std::size_t body = i;
            for (std::size_t j = close; j < i; ++j) {
              if (is_punct(toks[j], ":")) {
                body = find_ctor_body(toks, j);
                break;
              }
            }
            if (body >= toks.size() || toks[body].text != "{") body = i;
            i = body;
            fn.body_begin = body + 1;
            scope.kind = Scope::Kind::kFunction;
            scope.function_index = static_cast<int>(model.functions.size());
            model.functions.push_back(fn);
          }
        }
      }
      stack.push_back(scope);
      head = i + 1;
    } else if (text == "}") {
      if (!stack.empty()) {
        if (stack.back().kind == Scope::Kind::kFunction) {
          model.functions[stack.back().function_index].body_end = i;
        }
        stack.pop_back();
      }
      head = i + 1;
    } else if (text == ";") {
      if (!in_function() && !stack.empty() &&
          stack.back().kind == Scope::Kind::kClass) {
        Member m;
        if (parse_member(toks, head, i, m)) {
          model.structs[stack.back().struct_index].members.push_back(m);
        }
      } else if (!in_function() &&
                 (stack.empty() ||
                  stack.back().kind == Scope::Kind::kNamespace)) {
        const std::string g = parse_global(toks, head, i);
        if (!g.empty()) model.globals.push_back(g);
      }
      head = i + 1;
    }
  }
  // Unterminated function bodies (unbalanced braces) get an empty range.
  for (Function& fn : model.functions) {
    if (fn.body_end < fn.body_begin) fn.body_end = fn.body_begin;
  }
  return model;
}

namespace {

void add_finding(std::vector<Finding>& out, const SourceFile& f, int line,
                 const std::string& rule, std::string message) {
  if (lint::is_suppressed(f, line, rule)) return;
  Finding finding;
  finding.file = f.path;
  finding.line = line;
  finding.rule = rule;
  finding.message = std::move(message);
  out.push_back(finding);
}

// ---- Rule: status-propagation --------------------------------------------
//
// Within each function body, find local declarations of type Status /
// Result<T> and require at least one later *read* of the name — a return,
// a comparison, an `.ok()` probe, or use as a call argument all count.
// A local that is only assigned (or never mentioned again) is a dropped
// status: `[[nodiscard]]` cannot see it because the call result WAS
// stored. References, pointers and `auto` locals are skipped — the cheap
// model cannot type them, and the rule errs on silence.

struct StatusDecl {
  std::string name;
  int line = 0;
  std::size_t after = 0;  // first token index past the declaration
};

// Matches `[const] [jigsaw ::] Status|Result<...> NAME [=(;{]` at `i`.
bool match_status_decl(const std::vector<Token>& toks, std::size_t i,
                       std::size_t end, StatusDecl& out) {
  if (i < end && is_ident(toks[i], "const")) ++i;
  if (i + 1 < end && is_ident(toks[i], "jigsaw") && is_punct(toks[i + 1], "::")) {
    i += 2;
  }
  if (i >= end) return false;
  if (is_ident(toks[i], "Status")) {
    ++i;
  } else if (is_ident(toks[i], "Result") && i + 1 < end &&
             is_punct(toks[i + 1], "<")) {
    int depth = 0;
    std::size_t j = i + 1;
    for (; j < end; ++j) {
      if (toks[j].text == "<") ++depth;
      if (toks[j].text == ">" && --depth == 0) break;
      if (toks[j].text == ";") return false;
    }
    if (j >= end) return false;
    i = j + 1;
  } else {
    return false;
  }
  if (i + 1 >= end || toks[i].kind != Token::Kind::kIdent) return false;
  const std::string& next = toks[i + 1].text;
  if (next != "=" && next != "(" && next != "{" && next != ";") return false;
  out.name = toks[i].text;
  out.line = toks[i].line;
  out.after = i + 1;
  return true;
}

void rule_status_propagation(const std::vector<FileModel>& models,
                             std::vector<Finding>& out) {
  for (const FileModel& model : models) {
    const std::vector<Token>& toks = model.file->tokens;
    for (const Function& fn : model.functions) {
      // Declarations start a statement: scan positions after `;`/`{`/`}`.
      for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
        const bool at_stmt =
            i == fn.body_begin ||
            (toks[i - 1].kind == Token::Kind::kPunct &&
             (toks[i - 1].text == ";" || toks[i - 1].text == "{" ||
              toks[i - 1].text == "}"));
        if (!at_stmt) continue;
        StatusDecl decl;
        if (!match_status_decl(toks, i, fn.body_end, decl)) continue;
        int reads = 0;
        for (std::size_t j = decl.after; j < fn.body_end; ++j) {
          if (toks[j].kind != Token::Kind::kIdent || toks[j].text != decl.name) {
            continue;
          }
          const bool member_access =
              j > 0 && (is_punct(toks[j - 1], ".") || is_punct(toks[j - 1], "->") ||
                        is_punct(toks[j - 1], "::"));
          if (member_access) continue;  // someone else's field of that name
          const bool plain_assign =
              j + 1 < fn.body_end && is_punct(toks[j + 1], "=");
          if (!plain_assign) ++reads;
        }
        if (reads == 0) {
          add_finding(out, *model.file, decl.line, "status-propagation",
                      "status value `" + decl.name +
                          "` is produced but never consulted — return it, "
                          "check .ok()/compare it, or pass it to a handler");
        }
      }
    }
  }
}

// ---- Rule: arena-escape --------------------------------------------------
//
// Arena allocations live until the owning Arena/ArenaScope resets; a
// pointer that outlives that scope is a use-after-reset waiting to
// happen. The rule tracks, per function body: arena-typed locals and
// parameters, pointers whose initializer draws from one (`a.alloc<…>`,
// `a.allocate(…)`, `thread_scratch_arena().…`), and transitive copies.
// Flagged escapes: assignment to a member of the enclosing class,
// assignment to a namespace-scope variable, a `static` local, and
// by-reference lambda capture passed to a deferred-execution call
// (submit/async/enqueue/spawn).

bool tokens_contain_arena_source(const std::vector<Token>& toks,
                                 std::size_t begin, std::size_t end,
                                 const std::set<std::string>& bases,
                                 const std::set<std::string>& derived) {
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    if (derived.count(toks[i].text) > 0) {
      const bool member_access =
          i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
      // `*p` and `p[i]` read the pointee — copying the value out of the
      // arena is exactly the sanctioned fix, so only the pointer itself
      // escaping counts.
      const bool value_read =
          (i > 0 && is_punct(toks[i - 1], "*")) ||
          (i + 1 < end && is_punct(toks[i + 1], "["));
      if (!member_access && !value_read) return true;
    }
    const bool is_base = bases.count(toks[i].text) > 0 ||
                         toks[i].text == "thread_scratch_arena";
    if (!is_base || i + 2 >= end) continue;
    std::size_t j = i + 1;
    if (toks[i].text == "thread_scratch_arena") {
      if (!is_punct(toks[j], "(")) continue;
      j = skip_balanced(toks, j);
    }
    if (j + 1 < end && (is_punct(toks[j], ".") || is_punct(toks[j], "->")) &&
        toks[j + 1].kind == Token::Kind::kIdent &&
        toks[j + 1].text.rfind("alloc", 0) == 0) {
      return true;
    }
  }
  return false;
}

void rule_arena_escape(const std::vector<FileModel>& models,
                       std::vector<Finding>& out) {
  static const std::set<std::string> kDeferred = {"submit", "async", "enqueue",
                                                  "spawn"};
  for (const FileModel& model : models) {
    const std::vector<Token>& toks = model.file->tokens;
    std::set<std::string> globals(model.globals.begin(), model.globals.end());
    for (const Function& fn : model.functions) {
      // Member names of the enclosing class, for escape-to-member checks.
      std::set<std::string> members;
      for (const StructInfo& s : model.structs) {
        if (s.name == fn.class_name) {
          for (const Member& m : s.members) members.insert(m.name);
        }
      }

      // Pass 1 — arena bases: `Arena a`, `Arena& a`, `ArenaScope s(...)`,
      // `auto& a = thread_scratch_arena()`, and Arena&/Arena* parameters
      // (the signature range covers those).
      std::set<std::string> bases;
      for (std::size_t i = fn.sig_begin; i < fn.body_end; ++i) {
        if (!is_ident(toks[i], "Arena") && !is_ident(toks[i], "ArenaScope")) {
          continue;
        }
        std::size_t j = i + 1;
        while (j < fn.body_end &&
               (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
                is_ident(toks[j], "const"))) {
          ++j;
        }
        if (j < fn.body_end && toks[j].kind == Token::Kind::kIdent) {
          bases.insert(toks[j].text);
        }
      }
      for (std::size_t i = fn.body_begin; i + 3 < fn.body_end; ++i) {
        if (is_ident(toks[i], "thread_scratch_arena") &&
            i >= 2 && is_punct(toks[i - 1], "=") &&
            toks[i - 2].kind == Token::Kind::kIdent) {
          bases.insert(toks[i - 2].text);
        }
      }

      // Pass 2 — derived pointers, transitively, plus escape checks.
      // Iterate assignments in order; the derived set only grows, so a
      // single forward pass catches chains declared in order.
      std::set<std::string> derived;
      std::map<std::string, std::size_t> derived_at;  // name -> token index
      for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
        if (!is_punct(toks[i], "=")) continue;
        if (i == fn.body_begin || toks[i - 1].kind != Token::Kind::kIdent) {
          continue;
        }
        const std::string lhs = toks[i - 1].text;
        std::size_t stmt_end = i;
        while (stmt_end < fn.body_end && toks[stmt_end].text != ";") ++stmt_end;
        if (!tokens_contain_arena_source(toks, i + 1, stmt_end, bases,
                                         derived)) {
          continue;
        }
        const bool lhs_is_member_access =
            i >= 2 && (is_punct(toks[i - 2], ".") || is_punct(toks[i - 2], "->"));
        const int line = toks[i - 1].line;
        if (members.count(lhs) > 0 || lhs_is_member_access) {
          add_finding(out, *model.file, line, "arena-escape",
                      "arena-derived pointer stored to member `" + lhs +
                          "` — it dies when the arena resets; copy the data "
                          "or allocate from the owner");
        } else if (globals.count(lhs) > 0) {
          add_finding(out, *model.file, line, "arena-escape",
                      "arena-derived pointer stored to namespace-scope `" +
                          lhs + "` — it dies when the arena resets");
        } else {
          // `static T* p = arena.alloc…` — scan the statement head.
          bool is_static = false;
          for (std::size_t j = i; j > fn.body_begin; --j) {
            const std::string& t = toks[j - 1].text;
            if (t == ";" || t == "{" || t == "}") break;
            if (t == "static") is_static = true;
          }
          if (is_static) {
            add_finding(out, *model.file, line, "arena-escape",
                        "arena-derived pointer stored to static local `" +
                            lhs + "` — it dies when the arena resets");
          } else {
            derived.insert(lhs);
            derived_at.emplace(lhs, i);
          }
        }
      }

      // Pass 3 — by-reference captures handed to deferred execution:
      // `pool.submit([&]{ use(p); })` runs after this frame may be gone.
      for (std::size_t i = fn.body_begin; i + 2 < fn.body_end; ++i) {
        if (toks[i].kind != Token::Kind::kIdent ||
            kDeferred.count(toks[i].text) == 0 || !is_punct(toks[i + 1], "(")) {
          continue;
        }
        const std::size_t call_end = skip_balanced(toks, i + 1);
        // Find a lambda with `&` in its capture list inside the call.
        for (std::size_t j = i + 2; j + 1 < call_end; ++j) {
          if (!is_punct(toks[j], "[")) continue;
          std::size_t cap_end = j;
          bool by_ref = false;
          for (std::size_t k = j + 1; k < call_end; ++k) {
            if (is_punct(toks[k], "]")) {
              cap_end = k;
              break;
            }
            if (toks[k].text == "&") by_ref = true;
          }
          if (!by_ref || cap_end == j) continue;
          std::size_t body = cap_end + 1;
          if (body < call_end && is_punct(toks[body], "(")) {
            body = skip_balanced(toks, body);
          }
          while (body < call_end && !is_punct(toks[body], "{")) ++body;
          if (body >= call_end) continue;
          const std::size_t body_close = skip_balanced(toks, body);
          for (std::size_t k = body + 1; k + 1 < body_close; ++k) {
            if (toks[k].kind != Token::Kind::kIdent) continue;
            const bool known = (derived.count(toks[k].text) > 0 &&
                                derived_at[toks[k].text] < j) ||
                               bases.count(toks[k].text) > 0;
            if (!known) continue;
            add_finding(out, *model.file, toks[k].line, "arena-escape",
                        "arena-backed `" + toks[k].text +
                            "` captured by reference into a deferred task — "
                            "the arena may reset before the task runs");
            break;  // one finding per lambda is enough
          }
          j = cap_end;
        }
        i = call_end > i ? call_end - 1 : i;
      }
    }
  }
}

// ---- Rule: rcu-discipline ------------------------------------------------
//
// Three checks pinning the streaming-update PR's concurrency contract:
//  1. A member annotated GUARDED_BY(mu) is only touched as a bare
//     identifier inside its own class's methods, and only after `mu` is
//     locked somewhere earlier in that body (lock_guard/unique_lock/
//     scoped_lock/MutexLock construction or an explicit mu.lock()).
//  2. Every weak_ptr member of a class named Lineage carries GUARDED_BY —
//     deleting the annotation is itself a finding.
//  3. `std::atomic<…weak_ptr…>` never reappears (the GCC 12 _Sp_atomic
//     relaxed-unlock TSan trap is why the head is mutex-guarded).

bool mutex_locked_before(const std::vector<Token>& toks, std::size_t begin,
                         std::size_t access, const std::string& mu) {
  static const std::set<std::string> kLockers = {
      "lock_guard", "unique_lock", "scoped_lock", "MutexLock", "lock"};
  for (std::size_t j = begin; j < access; ++j) {
    if (toks[j].kind != Token::Kind::kIdent || toks[j].text != mu) continue;
    if (j + 2 < access && is_punct(toks[j + 1], ".") &&
        is_ident(toks[j + 2], "lock")) {
      return true;
    }
    const std::size_t window = j >= begin + 8 ? j - 8 : begin;
    for (std::size_t k = window; k < j; ++k) {
      if (toks[k].kind == Token::Kind::kIdent && kLockers.count(toks[k].text)) {
        return true;
      }
    }
  }
  return false;
}

void rule_rcu_discipline(const std::vector<FileModel>& models,
                         std::vector<Finding>& out) {
  for (const FileModel& model : models) {
    const std::vector<Token>& toks = model.file->tokens;

    // Check 3: the atomic<weak_ptr> ban, anywhere in the file. The lexer
    // does not bracket-match angle brackets, so scan a short window that
    // stops at the statement end — template arguments of the atomic are
    // always within it.
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!is_ident(toks[i], "atomic") || !is_punct(toks[i + 1], "<")) continue;
      const std::size_t close = std::min(toks.size(), i + 10);
      for (std::size_t j = i + 2; j < close; ++j) {
        if (is_punct(toks[j], ";")) break;
        if (is_ident(toks[j], "weak_ptr")) {
          add_finding(out, *model.file, toks[i].line, "rcu-discipline",
                      "std::atomic<std::weak_ptr> is banned: GCC 12's "
                      "_Sp_atomic unlocks with relaxed ordering (TSan trap) "
                      "— guard the weak_ptr with a mutex instead");
          break;
        }
      }
    }

    for (const StructInfo& s : model.structs) {
      // Check 2: Lineage weak_ptr members must be guarded.
      if (s.name == "Lineage") {
        for (const Member& m : s.members) {
          if (m.type.find("weak_ptr") != std::string::npos &&
              m.guarded_by.empty()) {
            add_finding(out, *model.file, m.line, "rcu-discipline",
                        "lineage head `" + m.name +
                            "` must carry GUARDED_BY(<mutex>) — the RCU "
                            "read path depends on it");
          }
        }
      }
      // Check 1: guarded members only under their mutex, in their class.
      for (const Member& m : s.members) {
        if (m.guarded_by.empty()) continue;
        for (const Function& fn : model.functions) {
          if (fn.class_name != s.name) continue;  // other classes' bare
          // idents of the same spelling are different symbols
          for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
            if (toks[i].kind != Token::Kind::kIdent || toks[i].text != m.name) {
              continue;
            }
            const bool qualified =
                i > 0 && (is_punct(toks[i - 1], ".") ||
                          is_punct(toks[i - 1], "->") ||
                          is_punct(toks[i - 1], "::"));
            if (qualified && !(i >= 2 && is_ident(toks[i - 2], "this"))) {
              continue;
            }
            if (!mutex_locked_before(toks, fn.body_begin, i, m.guarded_by)) {
              add_finding(out, *model.file, toks[i].line, "rcu-discipline",
                          "guarded member `" + m.name + "` of " + s.name +
                              " accessed without holding `" + m.guarded_by +
                              "` — lock it first (GUARDED_BY contract)");
              break;  // one finding per function is enough
            }
          }
        }
      }
    }
  }
}

// ---- Rule: obs-name-registry ---------------------------------------------
//
// The single source of truth for instrument names is the generated
// registry (docs/OBS_REGISTRY.md, written by --write-obs-registry).
// Every literal passed to obs::add/gauge_set/observe or named in a
// JIGSAW_TRACE_SCOPE must appear there exactly once; registry entries
// with no call site are stale; names documented in docs/OBSERVABILITY.md
// must exist in the registry. Dynamic names (built by concatenation —
// the first argument is not a lone string literal) are invisible here by
// design, and docs names with a `v<digit>` segment are treated as
// dynamic families.

struct ObsUse {
  std::string name;
  bool is_span = false;
  const SourceFile* file = nullptr;
  int line = 0;
};

const std::set<std::string>& metric_fns() {
  static const std::set<std::string> kFns = {
      "add", "gauge_set", "observe", "counter", "gauge", "histogram"};
  return kFns;
}

std::vector<ObsUse> collect_obs_uses(const std::vector<SourceFile>& files) {
  std::vector<ObsUse> uses;
  for (const SourceFile& f : files) {
    const std::vector<Token>& toks = f.tokens;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      // obs :: fn ( "name" [,)]
      if (is_ident(toks[i], "obs") && is_punct(toks[i + 1], "::") &&
          toks[i + 2].kind == Token::Kind::kIdent &&
          metric_fns().count(toks[i + 2].text) > 0 && i + 5 < toks.size() &&
          is_punct(toks[i + 3], "(") &&
          toks[i + 4].kind == Token::Kind::kString &&
          (is_punct(toks[i + 5], ",") || is_punct(toks[i + 5], ")"))) {
        uses.push_back({toks[i + 4].text, false, &f, toks[i + 4].line});
      }
      // JIGSAW_TRACE_SCOPE ( "category" , "name" )
      if (is_ident(toks[i], "JIGSAW_TRACE_SCOPE") && i + 5 < toks.size() &&
          is_punct(toks[i + 1], "(") &&
          toks[i + 2].kind == Token::Kind::kString &&
          is_punct(toks[i + 3], ",") &&
          toks[i + 4].kind == Token::Kind::kString &&
          is_punct(toks[i + 5], ")")) {
        uses.push_back({toks[i + 4].text, true, &f, toks[i + 4].line});
      }
    }
  }
  return uses;
}

// Registry lines look like "- `name`" (metrics) or "- `name` — category
// `cat`" (spans); everything else is prose. Returns name -> line numbers.
std::map<std::string, std::vector<int>> parse_registry(
    const std::string& content) {
  std::map<std::string, std::vector<int>> entries;
  std::istringstream in(content);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t dash = line.find("- `");
    if (dash == std::string::npos) continue;
    const std::size_t start = dash + 3;
    const std::size_t close = line.find('`', start);
    if (close == std::string::npos) continue;
    entries[line.substr(start, close - start)].push_back(line_no);
  }
  return entries;
}

bool looks_like_obs_name(const std::string& name) {
  if (name.find('.') == std::string::npos) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '.' || c == '_' || c == '/';
    if (!ok) return false;
  }
  return true;
}

bool is_dynamic_segment(const std::string& seg) {
  if (seg == "vN") return true;
  if (seg.size() >= 2 && seg[0] == 'v' &&
      std::isdigit(static_cast<unsigned char>(seg[1]))) {
    return true;
  }
  return false;
}

// Expands the docs shorthand `a.b/c/d` -> {a.b, a.c, a.d} (the slash
// alternatives replace the final dot-segment). Returns empty when the
// name is a dynamic family or not an instrument name at all.
std::vector<std::string> expand_docs_name(const std::string& raw) {
  static const std::set<std::string> kSubsystems = {
      "checked", "engine", "format",     "hybrid", "kernel",
      "reorder", "serialize", "tile_cache", "obs",    "jigsaw"};
  if (!looks_like_obs_name(raw)) return {};
  const std::string first = raw.substr(0, raw.find('.'));
  if (kSubsystems.count(first) == 0) return {};
  // `reorder.cpp`-style source-file references share the charset; the
  // extension gives them away.
  static const std::set<std::string> kFileExts = {"cpp", "hpp", "h", "cc",
                                                  "md"};
  const std::string last = raw.substr(raw.rfind('.') + 1);
  if (kFileExts.count(last) > 0) return {};
  std::vector<std::string> alts;
  std::string base = raw;
  const std::size_t slash = raw.find('/');
  if (slash != std::string::npos) {
    base = raw.substr(0, slash);
    std::string rest = raw.substr(slash + 1);
    const std::size_t last_dot = base.rfind('.');
    if (last_dot == std::string::npos) return {};
    const std::string prefix = base.substr(0, last_dot + 1);
    std::string alt;
    for (char c : rest + "/") {
      if (c == '/') {
        if (!alt.empty()) alts.push_back(prefix + alt);
        alt.clear();
      } else {
        alt += c;
      }
    }
  }
  alts.insert(alts.begin(), base);
  std::vector<std::string> names;
  for (const std::string& n : alts) {
    bool dynamic = false;
    std::string seg;
    for (char c : n + ".") {
      if (c == '.') {
        if (is_dynamic_segment(seg)) dynamic = true;
        seg.clear();
      } else {
        seg += c;
      }
    }
    if (!dynamic) names.push_back(n);
  }
  return names;
}

void rule_obs_name_registry(const std::vector<SourceFile>& files,
                            const Options& opts, std::vector<Finding>& out) {
  const std::vector<ObsUse> uses = collect_obs_uses(files);
  if (opts.registry_path.empty()) return;
  const auto registry = parse_registry(opts.registry_content);

  SourceFile registry_file;  // synthetic file so findings carry the path
  registry_file.path = opts.registry_path;

  std::set<std::string> used;
  for (const ObsUse& use : uses) {
    used.insert(use.name);
    if (registry.count(use.name) == 0) {
      add_finding(out, *use.file, use.line, "obs-name-registry",
                  "instrument name \"" + use.name +
                      "\" is not in the registry — regenerate it with "
                      "`jigsaw_analyze --write-obs-registry`");
    }
  }
  for (const auto& [name, lines] : registry) {
    if (lines.size() > 1) {
      add_finding(out, registry_file, lines[1], "obs-name-registry",
                  "registry entry \"" + name + "\" appears " +
                      std::to_string(lines.size()) +
                      " times — every name is listed exactly once");
    }
    if (used.count(name) == 0) {
      add_finding(out, registry_file, lines[0], "obs-name-registry",
                  "registry entry \"" + name +
                      "\" has no call site — stale; regenerate with "
                      "`jigsaw_analyze --write-obs-registry`");
    }
  }

  if (opts.docs_path.empty()) return;
  SourceFile docs_file;
  docs_file.path = opts.docs_path;
  std::istringstream in(opts.docs_content);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t tick = line.find('`');
    while (tick != std::string::npos) {
      const std::size_t close = line.find('`', tick + 1);
      if (close == std::string::npos) break;
      const std::string raw = line.substr(tick + 1, close - tick - 1);
      for (const std::string& name : expand_docs_name(raw)) {
        if (registry.count(name) == 0) {
          add_finding(out, docs_file, line_no, "obs-name-registry",
                      "documented name \"" + name +
                          "\" is not in the registry — the docs drifted "
                          "from the code");
        }
      }
      tick = line.find('`', close + 1);
    }
  }
}

}  // namespace

std::vector<std::string> rule_names() {
  return {"status-propagation", "arena-escape", "rcu-discipline",
          "obs-name-registry"};
}

std::string generate_obs_registry(const std::vector<SourceFile>& files) {
  std::set<std::string> metrics;
  std::set<std::string> spans;
  for (const ObsUse& use : collect_obs_uses(files)) {
    (use.is_span ? spans : metrics).insert(use.name);
  }
  std::ostringstream out;
  out << "# Observability name registry\n\n"
      << "<!-- Generated by `jigsaw_analyze --write-obs-registry`. Do not\n"
      << "     edit by hand: the obs-name-registry rule fails the build\n"
      << "     when this file drifts from the call sites. -->\n\n"
      << "Every statically-known instrument name in the source tree, one\n"
      << "entry per name. Dynamic families (names built by concatenation,\n"
      << "e.g. the per-kernel `kernel.vN.*` counters) are not listed —\n"
      << "the analyzer cannot see them and the obs-name lint rule vets\n"
      << "their shape at the call site instead.\n\n"
      << "## Metrics\n\n";
  for (const std::string& name : metrics) out << "- `" << name << "`\n";
  out << "\n## Spans\n\n";
  for (const std::string& name : spans) out << "- `" << name << "`\n";
  return out.str();
}

std::vector<Finding> run_rules(const std::vector<SourceFile>& files,
                               const std::vector<std::string>& rules,
                               const Options& opts) {
  auto enabled = [&rules](const char* name) {
    return rules.empty() ||
           std::find(rules.begin(), rules.end(), name) != rules.end();
  };
  std::vector<FileModel> models;
  models.reserve(files.size());
  for (const SourceFile& f : files) models.push_back(build_model(f));

  std::vector<Finding> findings;
  if (enabled("status-propagation")) {
    rule_status_propagation(models, findings);
  }
  if (enabled("arena-escape")) rule_arena_escape(models, findings);
  if (enabled("rcu-discipline")) rule_rcu_discipline(models, findings);
  if (enabled("obs-name-registry")) {
    rule_obs_name_registry(files, opts, findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return findings;
}

}  // namespace jigsaw::analyze
