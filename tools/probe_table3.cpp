#include <iostream>
#include "baselines/cusparselt.hpp"
#include "baselines/venom.hpp"
#include "core/kernel.hpp"
#include "dlmc/suite.hpp"
using namespace jigsaw;
int main() {
  gpusim::CostModel cm;
  for (double s : {0.80, 0.98}) {
    for (std::size_t V : {32ul}) {
      auto cfg = baselines::VenomConfig::for_sparsity(V, s);
      for (auto shape : {dlmc::Shape{512,512}, dlmc::Shape{2048,512}, dlmc::Shape{512,64}}) {
        auto a = baselines::venom_prune(core::round_up(shape.m, V), shape.k, cfg, 1);
        auto plan = core::jigsaw_plan(a.values(), {});
        for (std::size_t n : {256ul}) {
          auto b = dlmc::make_rhs(shape.k, n);
          auto jig = core::jigsaw_run(plan, b, cm, {.compute_values=false});
          auto ven = baselines::VenomKernel::cost(a, n, cfg, cm);
          auto cus = baselines::CuSparseLtKernel::cost(a.rows(), n, shape.k, cm);
          std::cout << "s=" << s << " V=" << V << " " << shape.label() << " N=" << n
                    << " jig=" << jig.report.duration_cycles << "(" << jig.report.name << "," << jig.report.breakdown.limiter_name() << ")"
                    << " venom=" << ven.duration_cycles << "(" << ven.breakdown.limiter_name() << ")"
                    << " cusp=" << cus.duration_cycles << "(" << cus.breakdown.limiter_name() << "," << cus.launch.blocks << "blk)"
                    << " j/v=" << ven.duration_cycles/jig.report.duration_cycles
                    << " j/c=" << cus.duration_cycles/jig.report.duration_cycles << "\n";
        }
      }
    }
  }
}
