#!/usr/bin/env bash
# Sanitizer driver with two modes (docs/STATIC_ANALYSIS.md):
#
#   scripts/run_sanitized.sh [address]   ASan+UBSan over the full
#       unit|property suite plus a long fuzz_format campaign — memory and
#       UB bugs in the untrusted-input paths (serialization, validation)
#       are exactly what the checked tier exists to contain.
#
#   scripts/run_sanitized.sh thread      ThreadSanitizer over the
#       concurrency surfaces: the engine suites (test_engine,
#       test_engine_update, the stress-labeled test_engine_stress with its
#       concurrent Engine::update soak) and the differential harness that
#       submits concurrently. TSan builds go to their own build directory
#       and disable OpenMP (libgomp is uninstrumented; see root
#       CMakeLists).
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-address}"

case "$MODE" in
  address)
    BUILD_DIR=build-sanitized
    cmake -B "$BUILD_DIR" -S . -DJIGSAW_SANITIZE=address
    cmake --build "$BUILD_DIR" -j
    export ASAN_OPTIONS=detect_leaks=0
    # unit + property only: the fuzz-label corpus replay is redundant with
    # the longer campaigns below, and future slow labels stay out of the
    # sanitizer's (already ~10x slower) critical path.
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
      -L "unit|property"
    "$BUILD_DIR"/tools/fuzz_format --iters 5000 --seed 1
    "$BUILD_DIR"/tools/fuzz_format --iters 5000 --seed 2
    ;;
  thread)
    BUILD_DIR=build-tsan
    cmake -B "$BUILD_DIR" -S . -DJIGSAW_SANITIZE=thread
    cmake --build "$BUILD_DIR" -j
    # halt_on_error: a single race fails the run instead of scrolling by;
    # second_deadlock_stack helps with the lock-order reports.
    export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
    # stress is in the label filter on purpose: the EngineStress suite is
    # labeled stress (not unit) and is the main thing TSan is here for.
    ctest --test-dir "$BUILD_DIR" --output-on-failure \
      -R "EngineStress|Engine|Differential" -L "unit|property|stress"
    ;;
  *)
    echo "usage: $0 [address|thread]" >&2
    exit 2
    ;;
esac

echo "run_sanitized($MODE): all clean"
