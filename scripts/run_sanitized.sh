#!/usr/bin/env bash
# Builds the tree with ASan/UBSan (the JIGSAW_SANITIZE CMake option) in a
# separate build directory, runs the full test suite, and finishes with a
# longer fuzzer campaign than the ctest-registered short run. Memory and
# UB bugs in the untrusted-input paths (serialization, validation) are
# exactly what the checked tier exists to contain, so they get hunted
# under sanitizers here.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-sanitized

cmake -B "$BUILD_DIR" -S . -DJIGSAW_SANITIZE=ON
cmake --build "$BUILD_DIR" -j

export ASAN_OPTIONS=detect_leaks=0
# unit + property only: the fuzz-label corpus replay is redundant with the
# longer campaigns below, and future slow labels stay out of the
# sanitizer's (already ~10x slower) critical path.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  -L "unit|property"

"$BUILD_DIR"/tools/fuzz_format --iters 5000 --seed 1
"$BUILD_DIR"/tools/fuzz_format --iters 5000 --seed 2

echo "run_sanitized: all clean"
