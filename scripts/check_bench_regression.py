#!/usr/bin/env python3
"""Compare a fresh benchmark run against a tracked baseline JSON.

Usage: check_bench_regression.py --baseline BENCH_spmm.json \
           --current new.json [--threshold 0.20]

Matches benchmarks by `name` and fails (exit 1) when any current
`real_time` exceeds the baseline by more than the threshold (default
20%). Benchmarks present on only one side are reported but never fail
the check: the suite is allowed to grow, and renamed cases should not
mask a real regression elsewhere. Improvements are printed so CI logs
double as a perf journal.

Times are compared in each file's own `time_unit` normalized to
nanoseconds; aggregate entries (run_type == "aggregate") are skipped in
favor of the raw iterations google-benchmark already averaged.
"""
import argparse
import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path: str) -> dict[str, float]:
    """name -> real_time in nanoseconds."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    times: dict[str, float] = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        real = b.get("real_time")
        unit = b.get("time_unit", "ns")
        if name is None or real is None or unit not in _UNIT_NS:
            continue
        times[name] = float(real) * _UNIT_NS[unit]
    return times


def fmt_ns(ns: float) -> str:
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="fail on >threshold benchmark time regressions")
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional slowdown (default 0.20)")
    args = parser.parse_args(argv[1:])

    try:
        baseline = load_times(args.baseline)
        current = load_times(args.current)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_regression: {e}", file=sys.stderr)
        return 2
    if not baseline or not current:
        print("check_bench_regression: empty benchmark set", file=sys.stderr)
        return 2

    regressions = []
    for name in sorted(baseline.keys() | current.keys()):
        if name not in baseline:
            print(f"  new       {name}: {fmt_ns(current[name])} (no baseline)")
            continue
        if name not in current:
            print(f"  missing   {name}: in baseline only")
            continue
        base, cur = baseline[name], current[name]
        ratio = cur / base if base > 0 else float("inf")
        line = (f"{name}: {fmt_ns(base)} -> {fmt_ns(cur)} "
                f"({(ratio - 1) * 100:+.1f}%)")
        if ratio > 1.0 + args.threshold:
            regressions.append(line)
            print(f"  REGRESSED {line}")
        elif ratio < 1.0 - args.threshold:
            print(f"  improved  {line}")
        else:
            print(f"  ok        {line}")

    if regressions:
        print(
            f"check_bench_regression: {len(regressions)} benchmark(s) "
            f"slower than baseline by more than "
            f"{args.threshold * 100:.0f}%:",
            file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("check_bench_regression: no regressions beyond "
          f"{args.threshold * 100:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
