#!/usr/bin/env bash
# Builds everything, runs the full test suite, and regenerates every paper
# table/figure, capturing test_output.txt and bench_output.txt at the repo
# root (the artifacts EXPERIMENTS.md refers to).
set -uo pipefail
cd "$(dirname "$0")/.."

# Release is load-bearing: the reorder-planner numbers in bench_output.txt
# and BENCH_reorder.json are meaningless from an unoptimized build (the
# benchmarks themselves warn loudly when NDEBUG is unset).
cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $(basename "$b") =====" | tee -a bench_output.txt
  extra_args=()
  # The planner and SpMM benchmarks also refresh their tracked JSON
  # baselines (BENCH_reorder.json / BENCH_spmm.json); spmm_throughput
  # refuses --json outright from a non-Release build.
  [ "$(basename "$b")" = reorder_throughput ] && extra_args=(--json)
  [ "$(basename "$b")" = spmm_throughput ] && extra_args=(--json)
  "$b" "${extra_args[@]}" 2>&1 | tee -a bench_output.txt
done

# Profile smoke: the observability pipeline must produce a valid Chrome
# trace with spans from every stage (reorder/format/kernel) on a generated
# 80%-sparse matrix.
build/tools/jigsaw profile --rows 256 --cols 256 --sparsity 0.8 \
  --trace profile_trace.json > profile_output.txt
python3 -c "import json; json.load(open('profile_trace.json'))" \
  2>/dev/null || echo "warning: profile_trace.json is not valid JSON"
