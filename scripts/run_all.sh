#!/usr/bin/env bash
# Builds everything, runs the full test suite, and regenerates every paper
# table/figure, capturing test_output.txt and bench_output.txt at the repo
# root (the artifacts EXPERIMENTS.md refers to).
set -uo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $(basename "$b") =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done
