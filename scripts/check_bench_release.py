#!/usr/bin/env python3
"""Gate: tracked benchmark JSON must come from a Release build.

Usage: check_bench_release.py BENCH_a.json [BENCH_b.json ...]

Rejects any file whose `context.jigsaw_build_type` is not "release".
That key is written by the bench binaries themselves
(bench/bench_common.hpp: build_type()) and reflects whether THIS tree was
compiled with NDEBUG. Do not key on google-benchmark's own
`library_build_type` field: it reports how the system libbenchmark was
built (frequently "debug" on distro packages) and says nothing about the
jigsaw code the benchmark actually timed.

A file with no `jigsaw_build_type` at all predates the gate and is also
rejected: regenerate it with `<bench> --json` from a
-DCMAKE_BUILD_TYPE=Release tree.
"""
import json
import sys


def check(path: str) -> str | None:
    """Returns an error message, or None when the file passes."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return f"{path}: unreadable benchmark JSON: {e}"
    context = doc.get("context")
    if not isinstance(context, dict):
        return f"{path}: no `context` object; not google-benchmark JSON?"
    build_type = context.get("jigsaw_build_type")
    if build_type is None:
        return (
            f"{path}: context has no `jigsaw_build_type` key; the file "
            "predates the release gate — regenerate it with `--json` from "
            "a Release build"
        )
    if build_type != "release":
        return (
            f"{path}: jigsaw_build_type is \"{build_type}\", want "
            "\"release\" — tracked baselines must come from a "
            "-DCMAKE_BUILD_TYPE=Release tree"
        )
    if not doc.get("benchmarks"):
        return f"{path}: `benchmarks` array is missing or empty"
    return None


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = [msg for path in argv[1:] if (msg := check(path))]
    for msg in errors:
        print(f"check_bench_release: {msg}", file=sys.stderr)
    if not errors:
        print(f"check_bench_release: {len(argv) - 1} file(s) ok")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
